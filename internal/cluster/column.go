package cluster

import (
	"context"
	"errors"
	"sync"

	"stair/internal/store"
)

// column is one stripe column's swappable backend: the device the
// store talks to, the server it currently lives on, and the dead flag
// the failure detector flips. A dead column fails every data operation
// fast with store.ErrDeviceFailed — the same answer a locally failed
// device gives — so the store's degraded-read path takes over without
// burning a transport timeout per request. Failover swaps a freshly
// dialled spare in with adopt, after which the column is live again
// and store.ReplaceDevice/RebuildDevice run their usual course.
//
// column implements store.FaultDevice and store.Syncer; fault-plane
// calls forward to the current device (over the wire for NetDevice).
type column struct {
	idx int
	// wrap decorates every adopted device (the per-backend coalescer
	// hooks in here); nil means no decoration.
	wrap func(store.Device) store.Device
	// onSuspect reports a transport-level error on live I/O to the
	// failure detector. Typed results — SectorErrors, ErrDeviceFailed —
	// are device states, not transport blips, and are not reported.
	onSuspect func(col int, err error)

	mu     sync.RWMutex
	dev    store.Device
	raw    store.Device // pre-wrap device: the transport itself (probes)
	server Server
	dead   bool

	sectors    int
	sectorSize int
}

func newColumn(idx int, server Server, dev store.Device, wrap func(store.Device) store.Device) *column {
	raw := dev
	if wrap != nil {
		dev = wrap(dev)
	}
	return &column{
		idx:        idx,
		wrap:       wrap,
		dev:        dev,
		raw:        raw,
		server:     server,
		sectors:    dev.Sectors(),
		sectorSize: dev.SectorSize(),
	}
}

// snapshot returns the current device, or ErrDeviceFailed when dead.
func (c *column) snapshot() (store.Device, error) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	if c.dead {
		return nil, store.ErrDeviceFailed
	}
	return c.dev, nil
}

// rawDev returns the pre-wrap transport device (nil when dead) — the
// monitor probes it directly, bypassing coalescing/wrapping layers.
func (c *column) rawDev() store.Device {
	c.mu.RLock()
	defer c.mu.RUnlock()
	if c.dead {
		return nil
	}
	return c.raw
}

// markDead flips the column to fast-failing degraded state and drops
// the dead transport. In-flight calls holding the old device surface
// their own transport errors; new calls never touch the network.
func (c *column) markDead() {
	c.mu.Lock()
	dev := c.dev
	c.dead = true
	c.dev = nil
	c.raw = nil
	c.mu.Unlock()
	if dev != nil {
		dev.Close()
	}
}

// adopt swaps in a freshly dialled replacement and revives the column.
func (c *column) adopt(dev store.Device, server Server) {
	raw := dev
	if c.wrap != nil {
		dev = c.wrap(dev)
	}
	c.mu.Lock()
	old := c.dev
	c.dev = dev
	c.raw = raw
	c.server = server
	c.dead = false
	c.mu.Unlock()
	if old != nil {
		old.Close()
	}
}

// state reports the column's current endpoint and liveness.
func (c *column) state() (Server, bool) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.server, !c.dead
}

// observe classifies an I/O error: anything that is not a typed device
// answer (partial-loss SectorErrors, ErrDeviceFailed) and not the
// caller's own cancellation looks like transport trouble and is
// reported to the failure detector.
func (c *column) observe(ctx context.Context, err error) {
	if err == nil || c.onSuspect == nil {
		return
	}
	if _, ok := store.AsSectorErrors(err); ok {
		return
	}
	if errors.Is(err, store.ErrDeviceFailed) || ctx.Err() != nil {
		return
	}
	c.onSuspect(c.idx, err)
}

// Sectors returns the column's capacity (stable across swaps: every
// fleet member serves the same geometry).
func (c *column) Sectors() int { return c.sectors }

// SectorSize returns the column's sector size.
func (c *column) SectorSize() int { return c.sectorSize }

// ReadSectors forwards the vectored read to the current device.
func (c *column) ReadSectors(ctx context.Context, start int, bufs [][]byte) error {
	dev, err := c.snapshot()
	if err != nil {
		return err
	}
	err = dev.ReadSectors(ctx, start, bufs)
	c.observe(ctx, err)
	return err
}

// WriteSectors forwards the vectored write to the current device.
func (c *column) WriteSectors(ctx context.Context, start int, data [][]byte) error {
	dev, err := c.snapshot()
	if err != nil {
		return err
	}
	err = dev.WriteSectors(ctx, start, data)
	c.observe(ctx, err)
	return err
}

// Sync forwards the durability barrier. The store skips devices whose
// Failed() reports true, so a dead column is never asked.
func (c *column) Sync(ctx context.Context) error {
	dev, err := c.snapshot()
	if err != nil {
		return err
	}
	err = store.SyncDevice(ctx, dev)
	c.observe(ctx, err)
	return err
}

// Close closes the current device.
func (c *column) Close() error {
	c.mu.Lock()
	dev := c.dev
	c.dev = nil
	c.raw = nil
	c.mu.Unlock()
	if dev == nil {
		return nil
	}
	return dev.Close()
}

// faultDev returns the current device's fault plane.
func (c *column) faultDev() (store.FaultDevice, error) {
	dev, err := c.snapshot()
	if err != nil {
		return nil, err
	}
	if fd, ok := dev.(store.FaultDevice); ok {
		return fd, nil
	}
	return nil, errors.New("cluster: column device does not support fault injection")
}

// Fail forwards to the current device's fault plane.
func (c *column) Fail() error {
	fd, err := c.faultDev()
	if err != nil {
		return err
	}
	return fd.Fail()
}

// Failed reports whether the column is dead or its device has failed.
func (c *column) Failed() bool {
	dev, err := c.snapshot()
	if err != nil {
		return true // dead column
	}
	if fd, ok := dev.(store.FaultDevice); ok {
		return fd.Failed()
	}
	return false
}

// Replace forwards to the current device's fault plane (after a
// failover swap this is the fresh spare, so the store's
// replace-comes-back-bad semantics apply to it).
func (c *column) Replace() error {
	fd, err := c.faultDev()
	if err != nil {
		return err
	}
	return fd.Replace()
}

// InjectSectorError forwards to the current device's fault plane.
func (c *column) InjectSectorError(idx int) error {
	fd, err := c.faultDev()
	if err != nil {
		return err
	}
	return fd.InjectSectorError(idx)
}

// BadSectors reports the current device's latent-error count (zero
// when the column is dead: there is no device to ask).
func (c *column) BadSectors() int {
	fd, err := c.faultDev()
	if err != nil {
		return 0
	}
	return fd.BadSectors()
}
