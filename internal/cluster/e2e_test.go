package cluster

import (
	"bytes"
	"context"
	"fmt"
	"net/http/httptest"
	"testing"
	"time"

	"stair/internal/store"
)

// The PR's acceptance scenario: six device servers plus one spare,
// kill a placed server mid-workload, and the volume must keep serving
// (degraded), fail over to the spare, rebuild in the background, and
// come out of a scrub with zero lost sectors.
func TestClusterKillFailoverRebuild(t *testing.T) {
	code := testCode(t)
	const sectorSize, stripes = 64, 6

	srvs := map[string]*httptest.Server{}
	var servers []Server
	for i := 0; i < 7; i++ {
		name := fmt.Sprintf("s%d", i)
		hs := httptest.NewServer(store.NewDeviceServer(store.NewMemDevice(stripes*code.R(), sectorSize)))
		t.Cleanup(hs.Close)
		srvs[name] = hs
		servers = append(servers, Server{Name: name, URL: hs.URL, Spare: i == 6})
	}

	v, err := Open(context.Background(), Config{
		Fleet:        &Fleet{Servers: servers},
		VolumeName:   "e2e",
		Code:         code,
		SectorSize:   sectorSize,
		Stripes:      stripes,
		FlushWorkers: 2,
		Coalesce:     &store.CoalesceOptions{Window: 100 * time.Microsecond},
		Monitor:      MonitorConfig{Interval: 50 * time.Millisecond, Timeout: 40 * time.Millisecond, FailAfter: 2},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer v.Close()

	ctx := context.Background()
	pattern := func(b, gen int) []byte {
		out := make([]byte, sectorSize)
		for i := range out {
			out[i] = byte(b*13 + gen*101 + i)
		}
		return out
	}
	blocks := v.Blocks()
	for b := 0; b < blocks; b++ {
		if err := v.WriteBlock(ctx, b, pattern(b, 0)); err != nil {
			t.Fatal(err)
		}
	}
	if err := v.Sync(ctx); err != nil {
		t.Fatal(err)
	}

	// Kill the server backing column 2, abruptly.
	victim := v.Placement()[2].Name
	srvs[victim].CloseClientConnections()
	srvs[victim].Close()

	// Degraded service must continue: every block stays readable with
	// its content, and writes keep landing.
	for b := 0; b < blocks; b++ {
		got, err := v.ReadBlock(ctx, b)
		if err != nil {
			t.Fatalf("degraded read of block %d: %v", b, err)
		}
		if !bytes.Equal(got, pattern(b, 0)) {
			t.Fatalf("degraded read of block %d returned wrong content", b)
		}
	}
	for b := 0; b < blocks/2; b++ {
		if err := v.WriteBlock(ctx, b, pattern(b, 1)); err != nil {
			t.Fatalf("degraded write of block %d: %v", b, err)
		}
	}
	if err := v.Sync(ctx); err != nil {
		t.Fatalf("degraded sync: %v", err)
	}

	// The failure detector must declare the death, swap in the spare,
	// and finish the background rebuild.
	deadline := time.Now().Add(15 * time.Second)
	for v.Stats().Rebuilds == 0 {
		if time.Now().After(deadline) {
			t.Fatalf("no rebuild completed; stats %+v, health %+v", v.Stats(), v.Health())
		}
		time.Sleep(20 * time.Millisecond)
	}
	v.WaitRebuilds()

	st := v.Stats()
	if st.Deaths == 0 || st.Failovers == 0 {
		t.Fatalf("stats %+v, want ≥1 death and ≥1 failover", st)
	}
	health := v.Health()
	if !health[2].Alive || health[2].Server != "s6" {
		t.Fatalf("column 2 health %+v, want alive on spare s6", health[2])
	}

	// Zero data loss, verified by scrub and a full read-back.
	rep, err := v.Scrub(ctx)
	if err != nil {
		t.Fatalf("post-rebuild scrub: %v", err)
	}
	if rep.SectorsLost != 0 || rep.StripesDamaged != 0 {
		t.Fatalf("post-rebuild scrub found damage: %+v", rep)
	}
	for b := 0; b < blocks; b++ {
		gen := 0
		if b < blocks/2 {
			gen = 1
		}
		got, err := v.ReadBlock(ctx, b)
		if err != nil {
			t.Fatalf("post-rebuild read of block %d: %v", b, err)
		}
		if !bytes.Equal(got, pattern(b, gen)) {
			t.Fatalf("post-rebuild block %d holds wrong content", b)
		}
	}
}

// With no spare left, a death degrades the volume but service
// continues; the spare-exhaustion counter records the unmet need.
func TestClusterSpareExhaustion(t *testing.T) {
	code := testCode(t)
	const sectorSize, stripes = 64, 2

	srvs := map[string]*httptest.Server{}
	var servers []Server
	for i := 0; i < 6; i++ {
		name := fmt.Sprintf("s%d", i)
		hs := httptest.NewServer(store.NewDeviceServer(store.NewMemDevice(stripes*code.R(), sectorSize)))
		t.Cleanup(hs.Close)
		srvs[name] = hs
		servers = append(servers, Server{Name: name, URL: hs.URL})
	}
	v, err := Open(context.Background(), Config{
		Fleet:      &Fleet{Servers: servers},
		Code:       code,
		SectorSize: sectorSize,
		Stripes:    stripes,
		Monitor:    MonitorConfig{Interval: 50 * time.Millisecond, Timeout: 40 * time.Millisecond, FailAfter: 2},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer v.Close()

	ctx := context.Background()
	for b := 0; b < v.Blocks(); b++ {
		if err := v.WriteBlock(ctx, b, bytes.Repeat([]byte{byte(b)}, sectorSize)); err != nil {
			t.Fatal(err)
		}
	}
	if err := v.Sync(ctx); err != nil {
		t.Fatal(err)
	}

	victim := v.Placement()[0].Name
	srvs[victim].CloseClientConnections()
	srvs[victim].Close()

	deadline := time.Now().Add(15 * time.Second)
	for v.Stats().SpareExhausted == 0 {
		if time.Now().After(deadline) {
			t.Fatalf("death never hit spare exhaustion; stats %+v", v.Stats())
		}
		time.Sleep(20 * time.Millisecond)
	}
	for b := 0; b < v.Blocks(); b++ {
		got, err := v.ReadBlock(ctx, b)
		if err != nil {
			t.Fatalf("degraded read of block %d: %v", b, err)
		}
		if !bytes.Equal(got, bytes.Repeat([]byte{byte(b)}, sectorSize)) {
			t.Fatalf("degraded block %d holds wrong content", b)
		}
	}
	if health := v.Health(); health[0].Alive {
		t.Fatalf("column 0 still alive after its server died: %+v", health)
	}
}
