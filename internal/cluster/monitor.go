package cluster

import (
	"context"
	"sync"
	"time"

	"stair/internal/store"
)

// Pinger is the liveness probe a dialled device may offer (NetDevice
// does: one unretried geometry fetch). Devices without it are probed
// only by the suspicion path — transport errors surfacing from live
// I/O — which is exactly the signal an in-process test device has.
type Pinger interface {
	Ping(ctx context.Context) error
}

// MonitorConfig tunes the failure detector.
type MonitorConfig struct {
	// Interval between health sweeps. 0 selects 1s.
	Interval time.Duration
	// Timeout bounds one probe. 0 selects half the interval.
	Timeout time.Duration
	// FailAfter is how many consecutive missed probes declare a server
	// dead. 0 selects 3. Suspicions from live I/O trigger an immediate
	// out-of-band probe of the suspected column, so a dead server is
	// usually declared in FailAfter probe timeouts, not FailAfter
	// sweep intervals.
	FailAfter int
}

func (cfg MonitorConfig) withDefaults() MonitorConfig {
	if cfg.Interval <= 0 {
		cfg.Interval = time.Second
	}
	if cfg.Timeout <= 0 {
		cfg.Timeout = cfg.Interval / 2
	}
	if cfg.FailAfter <= 0 {
		cfg.FailAfter = 3
	}
	return cfg
}

// monitor is the volume's failure detector and failover driver: it
// sweeps the columns' endpoints on a ticker, folds in suspicions from
// live I/O, declares a column dead after FailAfter consecutive missed
// probes, and drives the spare swap + background rebuild.
type monitor struct {
	v   *Volume
	cfg MonitorConfig

	suspect chan int
	stop    chan struct{}
	done    chan struct{}

	mu     sync.Mutex
	misses []int
}

func newMonitor(v *Volume, cfg MonitorConfig) *monitor {
	return &monitor{
		v:       v,
		cfg:     cfg.withDefaults(),
		suspect: make(chan int, len(v.cols)*4),
		stop:    make(chan struct{}),
		done:    make(chan struct{}),
		misses:  make([]int, len(v.cols)),
	}
}

// noteSuspicion is the column onSuspect callback; it never blocks the
// I/O path (a full queue drops the hint — the next sweep probes
// anyway).
func (m *monitor) noteSuspicion(col int, err error) {
	select {
	case m.suspect <- col:
	default:
	}
}

// columnMisses reports the current consecutive-miss count (for Health).
func (m *monitor) columnMisses(col int) int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.misses[col]
}

func (m *monitor) run() {
	defer close(m.done)
	ticker := time.NewTicker(m.cfg.Interval)
	defer ticker.Stop()
	for {
		select {
		case <-m.stop:
			return
		case col := <-m.suspect:
			m.probe(col)
		case <-ticker.C:
			m.sweep()
		}
	}
}

func (m *monitor) shutdown() {
	close(m.stop)
	<-m.done
}

// sweep probes every live column and retries failover for dead ones
// still waiting on a spare (e.g. an earlier spare dial failed).
func (m *monitor) sweep() {
	for col := range m.v.cols {
		if _, alive := m.v.cols[col].state(); !alive {
			m.v.failover(col)
			continue
		}
		m.probe(col)
	}
}

// probe health-checks one column and escalates to failover after
// FailAfter consecutive misses.
func (m *monitor) probe(col int) {
	c := m.v.cols[col]
	dev := c.rawDev()
	if dev == nil {
		return // already dead; sweep handles failover retry
	}
	m.v.counters.heartbeats.Add(1)
	ctx, cancel := context.WithTimeout(context.Background(), m.cfg.Timeout)
	alive := ping(ctx, dev)
	cancel()
	m.mu.Lock()
	if alive {
		m.misses[col] = 0
		m.mu.Unlock()
		return
	}
	m.misses[col]++
	dead := m.misses[col] >= m.cfg.FailAfter
	m.mu.Unlock()
	m.v.counters.missedHeartbeats.Add(1)
	if dead {
		m.declareDead(col)
	}
}

// ping probes one device: a Pinger answers authoritatively; anything
// else is presumed alive (its failures arrive as suspicions instead).
func ping(ctx context.Context, dev store.Device) bool {
	p, ok := dev.(Pinger)
	if !ok {
		return true
	}
	return p.Ping(ctx) == nil
}

// declareDead flips the column to degraded and starts failover.
func (m *monitor) declareDead(col int) {
	c := m.v.cols[col]
	if _, alive := c.state(); !alive {
		return
	}
	m.v.counters.deaths.Add(1)
	c.markDead()
	m.mu.Lock()
	m.misses[col] = 0
	m.mu.Unlock()
	m.v.failover(col)
}
