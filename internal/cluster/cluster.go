// Package cluster turns the single-process STAIR store into a
// distributed volume: it owns a fleet map of device-server endpoints
// (with spares), places each volume's n stripe columns onto distinct
// servers by rendezvous hashing, and watches the fleet's health. When a
// server dies — missed heartbeats, or transport errors surfacing from
// live I/O — its column flips to a fast-failing degraded state (served
// by the store's existing degraded-read path, with no per-request
// transport timeouts), a spare is dialled and swapped in, and
// store.RebuildDevice reconstructs the column in the background.
//
// Two latency defences ride on the same column seam. A per-backend
// request coalescer (store.CoalescingDevice) merges adjacent stripe
// extents from the concurrent flush pipeline into single vectored
// calls. Hedged reads bound tail latency the "Tail at Scale" way: when
// a column read exceeds a tracked latency percentile, the extent is
// reconstructed from the n−1 sibling columns through the code's repair
// path, and the first usable answer wins. Hedging at the column level
// is deliberate — the store holds a stripe's shard lock across its
// device calls, so a store-level hedge would serialize behind the very
// read it is trying to outrun, while sibling columns are idle and a
// reconstruction there proceeds in parallel.
package cluster
