package cluster

import (
	"context"
	"errors"
	"fmt"
	"sync"

	"stair/internal/core"
	"stair/internal/store"
	"stair/internal/store/journal"
)

// Config describes a cluster volume.
type Config struct {
	// Fleet is the set of device servers (actives + spares).
	Fleet *Fleet
	// VolumeName keys placement; two daemons opening the same name over
	// the same fleet agree on the column → server mapping. Empty
	// selects "volume".
	VolumeName string
	// Code/SectorSize/Stripes fix the volume geometry, exactly as for
	// store.Config. Every fleet server must serve Stripes×Code.R()
	// sectors of SectorSize bytes.
	Code       *core.Code
	SectorSize int
	Stripes    int
	// Dial connects one placed server. Nil selects store.DialNetDevice
	// with the default HTTP client. Tests and benchmarks inject local
	// or latency-shaped devices here.
	Dial func(ctx context.Context, server Server) (store.Device, error)
	// Coalesce, when non-nil, wraps every column in a per-backend
	// request coalescer merging adjacent stripe extents into single
	// vectored calls.
	Coalesce *store.CoalesceOptions
	// Hedge, when non-nil, enables hedged column reads.
	Hedge *HedgeConfig
	// Monitor tunes the failure detector (zero values select defaults).
	Monitor MonitorConfig
	// Integrity, when non-nil, turns on the end-to-end checksum layer in
	// the wrapped store (see store.Config.Integrity) and hardens the
	// cluster paths around it: hedged-read reconstructions are verified
	// against the code's parity relations before their bytes are served,
	// and rebuilds write fresh sidecar records for every sector they
	// reconstruct. Every fleet server must then serve
	// Stripes×Code.R() + store.IntegrityMetaSectors(...) sectors.
	Integrity *store.IntegrityOptions
	// Store tuning passthrough; see store.Config.
	Workers         int
	MaxDirtyStripes int
	FlushWorkers    int
	RepairWorkers   int
	Journal         *journal.Journal
}

// ColumnHealth is one column's view in Health().
type ColumnHealth struct {
	Col    int    `json:"col"`
	Server string `json:"server"`
	URL    string `json:"url"`
	Alive  bool   `json:"alive"`
	Misses int    `json:"misses"`
}

// Volume is a STAIR store whose columns live on a fleet of device
// servers: placement, health, failover and rebuild on the outside, the
// unchanged store.Store on the inside.
type Volume struct {
	code       *core.Code
	n, r       int
	sectorSize int
	stripes    int
	workers    int
	name       string
	// dataSectors is the per-column data region size (stripes×r); with
	// integrity on, devices carry sidecar sectors past it that the
	// stripe-shaped machinery (hedging, reconstruction) must not touch.
	dataSectors int
	// verifyHedge gates the parity re-verification of hedged-read
	// reconstructions (on when the integrity layer is configured).
	verifyHedge bool

	dial func(ctx context.Context, server Server) (store.Device, error)

	cols     []*column
	devs     []store.Device // what the store sees: hedged or raw columns
	st       *store.Store
	mon      *monitor
	counters clusterCounters

	spareMu sync.Mutex
	spares  []Server

	rebuildCtx    context.Context
	rebuildCancel context.CancelFunc
	rebuildWG     sync.WaitGroup

	closeOnce sync.Once
	closeErr  error
}

// Open places the volume's columns on the fleet, dials them, and opens
// the store over the resulting devices.
func Open(ctx context.Context, cfg Config) (*Volume, error) {
	if cfg.Fleet == nil {
		return nil, errors.New("cluster: Config.Fleet is required")
	}
	if cfg.Code == nil {
		return nil, errors.New("cluster: Config.Code is required")
	}
	name := cfg.VolumeName
	if name == "" {
		name = "volume"
	}
	dial := cfg.Dial
	if dial == nil {
		dial = func(ctx context.Context, server Server) (store.Device, error) {
			return store.DialNetDevice(ctx, server.URL, nil)
		}
	}
	n := cfg.Code.N()
	placed, err := Place(name, n, cfg.Fleet.Actives())
	if err != nil {
		return nil, err
	}

	v := &Volume{
		code:        cfg.Code,
		n:           n,
		r:           cfg.Code.R(),
		sectorSize:  cfg.SectorSize,
		stripes:     cfg.Stripes,
		workers:     cfg.Workers,
		name:        name,
		spares:      cfg.Fleet.Spares(),
		dataSectors: cfg.Stripes * cfg.Code.R(),
		verifyHedge: cfg.Integrity != nil,
	}
	v.rebuildCtx, v.rebuildCancel = context.WithCancel(context.Background())
	v.dial = dial

	var wrap func(store.Device) store.Device
	if cfg.Coalesce != nil {
		opts := *cfg.Coalesce
		wrap = func(d store.Device) store.Device { return store.NewCoalescingDevice(d, opts) }
	}

	v.cols = make([]*column, n)
	v.devs = make([]store.Device, n)
	for col := 0; col < n; col++ {
		dev, err := dial(ctx, placed[col])
		if err != nil {
			for _, c := range v.cols[:col] {
				c.Close()
			}
			v.rebuildCancel()
			return nil, fmt.Errorf("cluster: dialing %s (%s) for column %d: %w", placed[col].Name, placed[col].URL, col, err)
		}
		v.cols[col] = newColumn(col, placed[col], dev, wrap)
		if cfg.Hedge != nil {
			v.devs[col] = newHedgedColumn(v.cols[col], v, *cfg.Hedge)
		} else {
			v.devs[col] = v.cols[col]
		}
	}

	v.mon = newMonitor(v, cfg.Monitor)
	for _, c := range v.cols {
		c.onSuspect = v.mon.noteSuspicion
	}

	st, err := store.Open(store.Config{
		Code:       cfg.Code,
		SectorSize: cfg.SectorSize,
		Stripes:    cfg.Stripes,
		// The pluggable seam: the store builds its device list from the
		// cluster's placed, health-tracked, possibly hedged columns.
		DeviceFactory:   func(col int) (store.Device, error) { return v.devs[col], nil },
		Workers:         cfg.Workers,
		MaxDirtyStripes: cfg.MaxDirtyStripes,
		FlushWorkers:    cfg.FlushWorkers,
		RepairWorkers:   cfg.RepairWorkers,
		Journal:         cfg.Journal,
		Integrity:       cfg.Integrity,
	})
	if err != nil {
		for _, c := range v.cols {
			c.Close()
		}
		v.rebuildCancel()
		return nil, err
	}
	v.st = st
	go v.mon.run()
	return v, nil
}

// Store exposes the wrapped store for operations the Volume does not
// re-export.
func (v *Volume) Store() *store.Store { return v.st }

// ReadBlock reads one logical block (degraded if its column is dead).
func (v *Volume) ReadBlock(ctx context.Context, b int) ([]byte, error) {
	return v.st.ReadBlock(ctx, b)
}

// WriteBlock writes one logical block.
func (v *Volume) WriteBlock(ctx context.Context, b int, data []byte) error {
	return v.st.WriteBlock(ctx, b, data)
}

// Flush flushes buffered stripes to the fleet.
func (v *Volume) Flush(ctx context.Context) error { return v.st.Flush(ctx) }

// Sync flushes and barriers the fleet.
func (v *Volume) Sync(ctx context.Context) error { return v.st.Sync(ctx) }

// Scrub sweeps every stripe, verifying and repairing.
func (v *Volume) Scrub(ctx context.Context) (store.ScrubReport, error) { return v.st.Scrub(ctx) }

// BlockSize returns the logical block size.
func (v *Volume) BlockSize() int { return v.st.BlockSize() }

// Blocks returns the volume's logical capacity in blocks.
func (v *Volume) Blocks() int { return v.st.Blocks() }

// StoreStats snapshots the wrapped store's counters.
func (v *Volume) StoreStats() store.Stats { return v.st.Stats() }

// Stats snapshots the cluster layer's counters.
func (v *Volume) Stats() Stats {
	s := Stats{
		Heartbeats:       v.counters.heartbeats.Load(),
		MissedHeartbeats: v.counters.missedHeartbeats.Load(),
		Deaths:           v.counters.deaths.Load(),
		Failovers:        v.counters.failovers.Load(),
		SpareExhausted:   v.counters.spareExhausted.Load(),
		Rebuilds:         v.counters.rebuilds.Load(),
		RebuildErrors:    v.counters.rebuildErrors.Load(),
		HedgesLaunched:   v.counters.hedgesLaunched.Load(),
		HedgeWins:        v.counters.hedgeWins.Load(),
		HedgeLosses:      v.counters.hedgeLosses.Load(),
		HedgeFails:       v.counters.hedgeFails.Load(),
		HedgeVerifyFails: v.counters.hedgeVerifyFails.Load(),
	}
	v.spareMu.Lock()
	s.SparesLeft = uint64(len(v.spares))
	v.spareMu.Unlock()
	for _, c := range v.cols {
		if _, alive := c.state(); !alive {
			s.DeadColumns++
		}
		dev, err := c.snapshot()
		if err != nil {
			continue
		}
		if cd, ok := dev.(*store.CoalescingDevice); ok {
			cs := cd.Stats()
			s.Coalesce.Reads += cs.Reads
			s.Coalesce.Writes += cs.Writes
			s.Coalesce.InnerReads += cs.InnerReads
			s.Coalesce.InnerWrites += cs.InnerWrites
			s.Coalesce.MergedReads += cs.MergedReads
			s.Coalesce.MergedWrites += cs.MergedWrites
		}
	}
	return s
}

// Health reports every column's endpoint and liveness.
func (v *Volume) Health() []ColumnHealth {
	out := make([]ColumnHealth, len(v.cols))
	for i, c := range v.cols {
		server, alive := c.state()
		out[i] = ColumnHealth{
			Col:    i,
			Server: server.Name,
			URL:    server.URL,
			Alive:  alive,
			Misses: v.mon.columnMisses(i),
		}
	}
	return out
}

// Placement reports the current column → server mapping.
func (v *Volume) Placement() []Server {
	out := make([]Server, len(v.cols))
	for i, c := range v.cols {
		out[i], _ = c.state()
	}
	return out
}

// WaitRebuilds blocks until every background rebuild in flight has
// finished (tests and orderly shutdown).
func (v *Volume) WaitRebuilds() { v.rebuildWG.Wait() }

// takeSpare pops the next spare, or false when the pool is empty.
func (v *Volume) takeSpare() (Server, bool) {
	v.spareMu.Lock()
	defer v.spareMu.Unlock()
	if len(v.spares) == 0 {
		return Server{}, false
	}
	s := v.spares[0]
	v.spares = v.spares[1:]
	return s, true
}

// returnSpare puts a spare back after a failed dial, so the next sweep
// retries it.
func (v *Volume) returnSpare(s Server) {
	v.spareMu.Lock()
	v.spares = append([]Server{s}, v.spares...)
	v.spareMu.Unlock()
}

// failover swaps a dead column onto a spare and starts the background
// rebuild. Called from the monitor goroutine only.
func (v *Volume) failover(col int) {
	c := v.cols[col]
	if _, alive := c.state(); alive {
		return
	}
	spare, ok := v.takeSpare()
	if !ok {
		v.counters.spareExhausted.Add(1)
		return
	}
	ctx, cancel := context.WithTimeout(v.rebuildCtx, v.mon.cfg.Interval)
	dev, err := v.dial(ctx, spare)
	cancel()
	if err != nil {
		v.returnSpare(spare)
		return
	}
	c.adopt(dev, spare)
	v.counters.failovers.Add(1)
	// Replace-comes-back-bad: the fresh spare holds nothing, so every
	// sector it owns is marked lost and the unrecoverable bookkeeping
	// is re-evaluated — then the rebuild sweep reconstructs them.
	if err := v.st.ReplaceDevice(col); err != nil {
		return
	}
	v.rebuildWG.Add(1)
	go func() {
		defer v.rebuildWG.Done()
		if err := v.st.RebuildDevice(v.rebuildCtx, col); err != nil {
			v.counters.rebuildErrors.Add(1)
			return
		}
		v.counters.rebuilds.Add(1)
	}()
}

// reconstructExtent rebuilds one column's extent [start, start+len(dst))
// from the n−1 sibling columns: for every stripe the extent touches,
// read the siblings' rows (raw columns — no hedge recursion), feed the
// code's repair path with the hedged column (plus any sibling losses)
// marked lost, and copy the requested rows out. It runs under the same
// shard lock the primary read holds, so the sibling reads cannot
// observe a torn flush of the stripe.
func (v *Volume) reconstructExtent(ctx context.Context, col, start int, dst [][]byte) error {
	end := start + len(dst)
	for stripe := start / v.r; stripe*v.r < end; stripe++ {
		st, err := v.code.NewStripe(v.sectorSize)
		if err != nil {
			return err
		}
		lost := make([]core.Cell, 0, v.r*2)
		for row := 0; row < v.r; row++ {
			lost = append(lost, core.Cell{Col: col, Row: row})
		}
		var (
			mu   sync.Mutex
			hard error
			wg   sync.WaitGroup
		)
		for sib := 0; sib < v.n; sib++ {
			if sib == col {
				continue
			}
			wg.Add(1)
			go func(sib int) {
				defer wg.Done()
				bufs := make([][]byte, v.r)
				for row := range bufs {
					bufs[row] = st.Sector(sib, row)
				}
				err := v.cols[sib].ReadSectors(ctx, stripe*v.r, bufs)
				if err == nil {
					return
				}
				mu.Lock()
				defer mu.Unlock()
				if se, ok := store.AsSectorErrors(err); ok {
					for _, s := range se {
						lost = append(lost, core.Cell{Col: sib, Row: s.Index - stripe*v.r})
					}
					return
				}
				if errors.Is(err, store.ErrDeviceFailed) {
					for row := 0; row < v.r; row++ {
						lost = append(lost, core.Cell{Col: sib, Row: row})
					}
					return
				}
				hard = err
			}(sib)
		}
		wg.Wait()
		if hard != nil {
			return hard
		}
		if err := v.code.RepairParallel(st, lost, v.workers); err != nil {
			return err
		}
		if v.verifyHedge {
			// End-to-end discipline: a sibling serving silently rotten
			// bytes would make the repair solve its lie into the
			// reconstructed extent. Re-verifying the repaired stripe
			// against the full parity relations catches that before the
			// bytes are handed to anyone; the hedge then simply loses the
			// race (or the caller falls back to the primary).
			ok, err := v.code.Verify(st)
			if err != nil {
				return err
			}
			if !ok {
				v.counters.hedgeVerifyFails.Add(1)
				return fmt.Errorf("cluster: reconstructed extent for column %d stripe %d failed verification", col, stripe)
			}
		}
		for row := 0; row < v.r; row++ {
			sector := stripe*v.r + row
			if sector >= start && sector < end {
				copy(dst[sector-start], st.Sector(col, row))
			}
		}
	}
	return nil
}

// Quiesce waits out background store activity (tests).
func (v *Volume) Quiesce() { v.st.Quiesce() }

// Close stops the monitor, aborts in-flight rebuilds, and closes the
// store (which closes the columns and their devices).
func (v *Volume) Close() error {
	v.closeOnce.Do(func() {
		v.mon.shutdown()
		v.rebuildCancel()
		v.rebuildWG.Wait()
		v.closeErr = v.st.Close()
	})
	return v.closeErr
}
