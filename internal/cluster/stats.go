package cluster

import (
	"sync/atomic"

	"stair/internal/store"
)

// Stats is a snapshot of the cluster layer's counters: the failure
// detector's activity, failover and rebuild outcomes, and what the two
// tail defences (hedging, coalescing) won.
type Stats struct {
	// Heartbeats counts health probes issued; MissedHeartbeats counts
	// probes that failed.
	Heartbeats       uint64 `json:"heartbeats"`
	MissedHeartbeats uint64 `json:"missed_heartbeats"`
	// Deaths counts columns declared dead; Failovers counts successful
	// spare swaps; SpareExhausted counts deaths left degraded because
	// no spare remained.
	Deaths         uint64 `json:"deaths"`
	Failovers      uint64 `json:"failovers"`
	SpareExhausted uint64 `json:"spare_exhausted"`
	// Rebuilds counts background rebuilds completed onto a swapped-in
	// spare; RebuildErrors counts rebuild sweeps that returned an error
	// (the scrubber re-finds what they missed).
	Rebuilds      uint64 `json:"rebuilds"`
	RebuildErrors uint64 `json:"rebuild_errors"`
	// Hedge race outcomes: launched = primary blew its percentile;
	// wins = reconstruction answered first; losses = primary answered
	// while the hedge ran; fails = reconstruction itself failed.
	HedgesLaunched uint64 `json:"hedges_launched"`
	HedgeWins      uint64 `json:"hedge_wins"`
	HedgeLosses    uint64 `json:"hedge_losses"`
	HedgeFails     uint64 `json:"hedge_fails"`
	// HedgeVerifyFails counts hedged reconstructions discarded because
	// the repaired stripe failed parity verification — a sibling fed the
	// repair silently corrupt bytes (integrity mode only).
	HedgeVerifyFails uint64 `json:"hedge_verify_fails"`
	// DeadColumns and SparesLeft are gauges of the current placement:
	// columns presently marked dead (declared but not yet failed over,
	// or degraded with the spare pool empty) and spares still unused.
	// Together with Deaths/Failovers they let a soak harness assert the
	// detector converged — every death either failed over or exhausted
	// the pool.
	DeadColumns uint64 `json:"dead_columns"`
	SparesLeft  uint64 `json:"spares_left"`
	// Coalesce aggregates the per-column request coalescers (zero when
	// coalescing is off).
	Coalesce store.CoalesceStats `json:"coalesce"`
}

// counters is the live atomic form of Stats.
type clusterCounters struct {
	heartbeats, missedHeartbeats      atomic.Uint64
	deaths, failovers, spareExhausted atomic.Uint64
	rebuilds, rebuildErrors           atomic.Uint64
	hedgesLaunched, hedgeWins         atomic.Uint64
	hedgeLosses, hedgeFails           atomic.Uint64
	hedgeVerifyFails                  atomic.Uint64
}
