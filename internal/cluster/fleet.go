package cluster

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
)

// Server is one device-server endpoint in the fleet.
type Server struct {
	// Name identifies the server in placement and health reporting; it
	// must be unique across the fleet. Placement hashes the name, so
	// renaming a server moves data.
	Name string `json:"name"`
	// URL is the device server's base URL (http://host:port).
	URL string `json:"url"`
	// Spare marks a server held out of placement as a rebuild target.
	Spare bool `json:"spare"`
}

// Fleet is the set of device servers a volume can place columns on.
// The on-disk form is JSON:
//
//	{"servers": [
//	  {"name": "dev0", "url": "http://127.0.0.1:9000"},
//	  {"name": "dev6", "url": "http://127.0.0.1:9006", "spare": true}
//	]}
type Fleet struct {
	Servers []Server `json:"servers"`
}

// ParseFleet decodes and validates a fleet description.
func ParseFleet(r io.Reader) (*Fleet, error) {
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	var f Fleet
	if err := dec.Decode(&f); err != nil {
		return nil, fmt.Errorf("cluster: parsing fleet: %w", err)
	}
	if len(f.Servers) == 0 {
		return nil, fmt.Errorf("cluster: fleet has no servers")
	}
	seen := make(map[string]bool, len(f.Servers))
	for i, s := range f.Servers {
		if s.Name == "" {
			return nil, fmt.Errorf("cluster: fleet server %d has no name", i)
		}
		if s.URL == "" {
			return nil, fmt.Errorf("cluster: fleet server %q has no url", s.Name)
		}
		if seen[s.Name] {
			return nil, fmt.Errorf("cluster: duplicate fleet server name %q", s.Name)
		}
		seen[s.Name] = true
	}
	return &f, nil
}

// LoadFleet reads a fleet file from disk.
func LoadFleet(path string) (*Fleet, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return ParseFleet(f)
}

// Actives returns the servers eligible for placement.
func (f *Fleet) Actives() []Server {
	var out []Server
	for _, s := range f.Servers {
		if !s.Spare {
			out = append(out, s)
		}
	}
	return out
}

// Spares returns the servers held out as rebuild targets.
func (f *Fleet) Spares() []Server {
	var out []Server
	for _, s := range f.Servers {
		if s.Spare {
			out = append(out, s)
		}
	}
	return out
}
