package cluster

import (
	"strings"
	"testing"
)

func fleetOf(names ...string) []Server {
	out := make([]Server, len(names))
	for i, n := range names {
		out[i] = Server{Name: n, URL: "http://" + n}
	}
	return out
}

func TestParseFleetValidation(t *testing.T) {
	cases := []struct {
		name, body, wantErr string
	}{
		{"empty", `{"servers":[]}`, "no servers"},
		{"unnamed", `{"servers":[{"url":"http://x"}]}`, "no name"},
		{"noURL", `{"servers":[{"name":"a"}]}`, "no url"},
		{"dup", `{"servers":[{"name":"a","url":"http://x"},{"name":"a","url":"http://y"}]}`, "duplicate"},
		{"unknownField", `{"servers":[],"extra":1}`, "parsing"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := ParseFleet(strings.NewReader(tc.body))
			if err == nil || !strings.Contains(err.Error(), tc.wantErr) {
				t.Fatalf("ParseFleet = %v, want error containing %q", err, tc.wantErr)
			}
		})
	}

	f, err := ParseFleet(strings.NewReader(`{"servers":[
		{"name":"a","url":"http://a"},
		{"name":"b","url":"http://b","spare":true}]}`))
	if err != nil {
		t.Fatal(err)
	}
	if len(f.Actives()) != 1 || f.Actives()[0].Name != "a" {
		t.Fatalf("Actives = %v", f.Actives())
	}
	if len(f.Spares()) != 1 || f.Spares()[0].Name != "b" {
		t.Fatalf("Spares = %v", f.Spares())
	}
}

func TestPlacementDistinctAndDeterministic(t *testing.T) {
	servers := fleetOf("s0", "s1", "s2", "s3", "s4", "s5", "s6", "s7")
	a, err := Place("vol", 6, servers)
	if err != nil {
		t.Fatal(err)
	}
	seen := map[string]bool{}
	for col, s := range a {
		if seen[s.Name] {
			t.Fatalf("server %s placed twice (column %d)", s.Name, col)
		}
		seen[s.Name] = true
	}
	b, err := Place("vol", 6, servers)
	if err != nil {
		t.Fatal(err)
	}
	for col := range a {
		if a[col].Name != b[col].Name {
			t.Fatalf("placement not deterministic at column %d: %s vs %s", col, a[col].Name, b[col].Name)
		}
	}
	// A different volume name should (for this fleet) shuffle at least
	// one column — the hash actually keys on the volume.
	c, err := Place("other-vol", 6, servers)
	if err != nil {
		t.Fatal(err)
	}
	same := true
	for col := range a {
		if a[col].Name != c[col].Name {
			same = false
		}
	}
	if same {
		t.Fatal("two distinct volumes produced identical placements on an 8-server fleet")
	}
}

// Removing a server not used by the placement must not move any column
// (rendezvous stability).
func TestPlacementStableUnderUnrelatedChange(t *testing.T) {
	servers := fleetOf("s0", "s1", "s2", "s3", "s4", "s5", "s6", "s7")
	before, err := Place("vol", 4, servers)
	if err != nil {
		t.Fatal(err)
	}
	used := map[string]bool{}
	for _, s := range before {
		used[s.Name] = true
	}
	var pruned []Server
	removed := false
	for _, s := range servers {
		if !used[s.Name] && !removed {
			removed = true // drop one unused server
			continue
		}
		pruned = append(pruned, s)
	}
	if !removed {
		t.Skip("placement used every server; nothing unrelated to remove")
	}
	after, err := Place("vol", 4, pruned)
	if err != nil {
		t.Fatal(err)
	}
	for col := range before {
		if before[col].Name != after[col].Name {
			t.Fatalf("column %d moved (%s → %s) when an unrelated server left",
				col, before[col].Name, after[col].Name)
		}
	}
}

func TestPlacementTooFewServers(t *testing.T) {
	if _, err := Place("vol", 6, fleetOf("a", "b")); err == nil {
		t.Fatal("placing 6 columns on 2 servers succeeded")
	}
}
