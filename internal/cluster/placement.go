package cluster

import (
	"fmt"
	"hash/fnv"
	"strconv"
)

// Place maps a volume's n stripe columns onto n distinct servers by
// per-column rendezvous (highest-random-weight) hashing: every server
// scores against the (volume, column) key, the best unused server wins
// the column. The mapping is deterministic in (volume, fleet) — two
// daemons with the same fleet file agree on it without coordination —
// and stable: adding or removing an unrelated server moves only the
// columns that server won.
func Place(volume string, n int, servers []Server) ([]Server, error) {
	if n < 1 {
		return nil, fmt.Errorf("cluster: placement for %d columns", n)
	}
	if len(servers) < n {
		return nil, fmt.Errorf("cluster: placing %d columns on %d servers; need at least one server per column", n, len(servers))
	}
	used := make(map[string]bool, n)
	out := make([]Server, n)
	for col := range out {
		best, bestScore := -1, uint64(0)
		for i, s := range servers {
			if used[s.Name] {
				continue
			}
			score := placementScore(volume, col, s.Name)
			if best < 0 || score > bestScore {
				best, bestScore = i, score
			}
		}
		out[col] = servers[best]
		used[servers[best].Name] = true
	}
	return out, nil
}

// placementScore is the rendezvous weight of one server for one
// (volume, column) key.
func placementScore(volume string, col int, server string) uint64 {
	h := fnv.New64a()
	h.Write([]byte(volume))
	h.Write([]byte{0})
	h.Write([]byte(strconv.Itoa(col)))
	h.Write([]byte{0})
	h.Write([]byte(server))
	return h.Sum64()
}
