package cluster

import (
	"bytes"
	"context"
	"fmt"
	"testing"
	"time"

	"stair/internal/store"
)

// integrityFixture dials MemDevices sized for the sidecar region and
// remembers them by server name, so tests can corrupt media directly
// (bypassing every cluster wrapper — silent corruption).
type integrityFixture struct {
	mems  map[string]*store.MemDevice
	gates map[string]*gateDevice
}

func openIntegrityVolume(t *testing.T, stripes, sectorSize int, hedge *HedgeConfig) (*Volume, *integrityFixture) {
	t.Helper()
	code := testCode(t)
	fx := &integrityFixture{mems: map[string]*store.MemDevice{}, gates: map[string]*gateDevice{}}
	var servers []Server
	for i := 0; i < 8; i++ {
		name := fmt.Sprintf("s%d", i)
		servers = append(servers, Server{Name: name, URL: "local://" + name, Spare: i >= 6})
	}
	want := stripes*code.R() + store.IntegrityMetaSectors(stripes, code.R(), sectorSize)
	v, err := Open(context.Background(), Config{
		Fleet:      &Fleet{Servers: servers},
		VolumeName: "integrity-test",
		Code:       code,
		SectorSize: sectorSize,
		Stripes:    stripes,
		Workers:    2,
		Integrity:  &store.IntegrityOptions{Epoch: 11},
		Dial: func(ctx context.Context, server Server) (store.Device, error) {
			if _, ok := fx.mems[server.Name]; ok {
				return fx.gates[server.Name], nil
			}
			mem := store.NewMemDevice(want, sectorSize)
			g := &gateDevice{FaultDevice: mem}
			fx.mems[server.Name], fx.gates[server.Name] = mem, g
			return g, nil
		},
		Hedge:   hedge,
		Monitor: MonitorConfig{Interval: time.Hour},
	})
	if err != nil {
		t.Fatal(err)
	}
	return v, fx
}

// fillVolume writes a deterministic payload to every block and syncs.
func fillVolume(t *testing.T, v *Volume) {
	t.Helper()
	ctx := context.Background()
	for b := 0; b < v.Blocks(); b++ {
		data := bytes.Repeat([]byte{byte(b + 1)}, v.BlockSize())
		if err := v.WriteBlock(ctx, b, data); err != nil {
			t.Fatal(err)
		}
	}
	if err := v.Sync(ctx); err != nil {
		t.Fatal(err)
	}
}

// TestClusterIntegrityEndToEnd: a bit silently flipped on one device
// server's media is detected on the next read through the whole cluster
// stack, repaired into a located erasure, and a post-repair scrub is
// silent.
func TestClusterIntegrityEndToEnd(t *testing.T) {
	v, fx := openIntegrityVolume(t, 3, 64, nil)
	defer v.Close()
	fillVolume(t, v)
	ctx := context.Background()

	// Flip a bit of block 0's sector behind every cluster wrapper.
	cell := v.code.DataCells()[0]
	victim := v.Placement()[cell.Col].Name
	if err := fx.mems[victim].CorruptSector(cell.Row); err != nil {
		t.Fatal(err)
	}

	got, err := v.ReadBlock(ctx, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, bytes.Repeat([]byte{1}, v.BlockSize())) {
		t.Fatal("cluster read returned rotten bytes despite the integrity layer")
	}
	if st := v.StoreStats(); st.ChecksumMismatches == 0 {
		t.Fatalf("store stats %+v, want the mismatch counted", st)
	}
	v.Quiesce()
	rep, err := v.Scrub(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if rep.ChecksumMismatches != 0 || rep.StripesDamaged != 0 || rep.StripesInconsistent != 0 {
		t.Fatalf("scrub after repair %+v, want clean", rep)
	}
}

// TestClusterRebuildWritesFreshSidecars: rebuilding a replaced column
// must persist fresh integrity records alongside the reconstructed data
// — proven by reopening the volume over the same media and verifying
// reads against what the rebuild wrote.
func TestClusterRebuildWritesFreshSidecars(t *testing.T) {
	v, fx := openIntegrityVolume(t, 3, 64, nil)
	fillVolume(t, v)
	ctx := context.Background()

	const col = 2
	if err := v.Store().ReplaceDevice(col); err != nil {
		t.Fatal(err)
	}
	if err := v.Store().RebuildDevice(ctx, col); err != nil {
		t.Fatal(err)
	}
	if err := v.Sync(ctx); err != nil {
		t.Fatal(err)
	}
	placement := v.Placement()
	if err := v.Close(); err != nil {
		t.Fatal(err)
	}

	// Reopen over the SAME MemDevices: the only integrity records the new
	// mount can see are the persisted sidecars.
	code := testCode(t)
	stripes, sectorSize := 3, 64
	v2, err := Open(ctx, Config{
		Fleet:      &Fleet{Servers: placementServers(placement)},
		VolumeName: "integrity-test",
		Code:       code,
		SectorSize: sectorSize,
		Stripes:    stripes,
		Workers:    2,
		Integrity:  &store.IntegrityOptions{Epoch: 11},
		Dial: func(ctx context.Context, server Server) (store.Device, error) {
			return fx.gates[server.Name], nil
		},
		Monitor: MonitorConfig{Interval: time.Hour},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer v2.Close()
	for b := 0; b < v2.Blocks(); b++ {
		got, err := v2.ReadBlock(ctx, b)
		if err != nil {
			t.Fatalf("read block %d after rebuild+reopen: %v", b, err)
		}
		if !bytes.Equal(got, bytes.Repeat([]byte{byte(b + 1)}, v2.BlockSize())) {
			t.Fatalf("block %d corrupt after rebuild", b)
		}
	}
	st := v2.StoreStats()
	if st.VerifiedSectors == 0 {
		t.Fatal("VerifiedSectors=0 — the rebuilt column's sidecar records did not persist")
	}
	if st.ChecksumMismatches != 0 {
		t.Fatalf("ChecksumMismatches=%d after rebuild, want 0", st.ChecksumMismatches)
	}
	rep, err := v2.Scrub(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if rep.ChecksumMismatches != 0 || rep.StripesInconsistent != 0 || rep.RecordsRefreshed != 0 {
		t.Fatalf("scrub after rebuild %+v, want nothing to fix or refresh", rep)
	}
}

// placementServers rebuilds a fleet server list from a placement
// snapshot, preserving the column → server mapping of the prior mount.
func placementServers(placed []Server) []Server {
	out := make([]Server, len(placed))
	copy(out, placed)
	return out
}

// TestHedgeReconstructionRefusesCorruptSiblings: a hedged reconstruction
// fed silently rotten bytes by a sibling must fail verification and
// lose the race — the (slow but honest) primary's bytes win, and the
// discard is counted.
func TestHedgeReconstructionRefusesCorruptSiblings(t *testing.T) {
	v, fx := openIntegrityVolume(t, 3, 64, &HedgeConfig{
		Percentile: 0.5,
		MinDelay:   2 * time.Millisecond,
		MaxDelay:   20 * time.Millisecond,
		MinSamples: 4,
		Window:     64,
	})
	defer v.Close()
	fillVolume(t, v)
	ctx := context.Background()

	hd, ok := v.devs[0].(*hedgedColumn)
	if !ok {
		t.Fatalf("column 0 device is %T, want *hedgedColumn", v.devs[0])
	}
	// Warm the latency tracker with fast reads.
	for i := 0; i < 8; i++ {
		if err := hd.ReadSectors(ctx, 0, [][]byte{make([]byte, 64)}); err != nil {
			t.Fatal(err)
		}
	}

	// A sibling of column 0 silently rots a sector of stripe 0…
	sibling := v.Placement()[1].Name
	if err := fx.mems[sibling].CorruptSector(0); err != nil {
		t.Fatal(err)
	}
	// …then column 0's backend stalls, forcing the hedge to reconstruct
	// stripe 0 through the rotten sibling.
	primary := v.Placement()[0].Name
	fx.gates[primary].delay.Store(int64(150 * time.Millisecond))

	want := make([][]byte, v.code.R())
	bufs := make([][]byte, v.code.R())
	for i := range bufs {
		bufs[i] = make([]byte, 64)
		want[i] = make([]byte, 64)
	}
	if err := fx.mems[primary].ReadSectors(ctx, 0, want); err != nil {
		t.Fatal(err)
	}
	if err := hd.ReadSectors(ctx, 0, bufs); err != nil {
		t.Fatalf("hedged read: %v", err)
	}
	for i := range bufs {
		if !bytes.Equal(bufs[i], want[i]) {
			t.Fatalf("sector %d: the unverified reconstruction's bytes were served", i)
		}
	}
	st := v.Stats()
	if st.HedgeVerifyFails == 0 {
		t.Fatalf("hedge counters %+v, want the corrupt reconstruction discarded (HedgeVerifyFails ≥ 1)", st)
	}
}
