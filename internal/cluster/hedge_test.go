package cluster

import (
	"bytes"
	"context"
	"fmt"
	"sync/atomic"
	"testing"
	"time"

	"stair/internal/core"
	"stair/internal/store"
)

func testCode(t testing.TB) *core.Code {
	t.Helper()
	c, err := core.New(core.Config{N: 6, R: 4, M: 2, E: []int{1, 2}})
	if err != nil {
		t.Fatal(err)
	}
	return c
}

// gateDevice wraps a MemDevice with a switchable per-call delay — the
// deterministic stand-in for a backend that suddenly goes
// heavy-tailed.
type gateDevice struct {
	store.FaultDevice
	delay atomic.Int64 // nanoseconds
}

func (g *gateDevice) wait(ctx context.Context) error {
	d := time.Duration(g.delay.Load())
	if d <= 0 {
		return ctx.Err()
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return ctx.Err()
	case <-t.C:
		return nil
	}
}

func (g *gateDevice) ReadSectors(ctx context.Context, start int, bufs [][]byte) error {
	if err := g.wait(ctx); err != nil {
		return err
	}
	return g.FaultDevice.ReadSectors(ctx, start, bufs)
}

func (g *gateDevice) WriteSectors(ctx context.Context, start int, data [][]byte) error {
	if err := g.wait(ctx); err != nil {
		return err
	}
	return g.FaultDevice.WriteSectors(ctx, start, data)
}

func TestLatencyTracker(t *testing.T) {
	tr := newLatencyTracker(8)
	if _, ok := tr.percentile(0.9, 4); ok {
		t.Fatal("empty tracker answered a percentile")
	}
	for i := 1; i <= 8; i++ {
		tr.record(time.Duration(i) * time.Millisecond)
	}
	p, ok := tr.percentile(0.5, 4)
	if !ok {
		t.Fatal("full tracker refused a percentile")
	}
	if p < 4*time.Millisecond || p > 6*time.Millisecond {
		t.Fatalf("p50 of 1..8ms = %v", p)
	}
	// Ring overwrite: 8 more samples at 100ms shift the window.
	for i := 0; i < 8; i++ {
		tr.record(100 * time.Millisecond)
	}
	if p, _ := tr.percentile(0.5, 4); p != 100*time.Millisecond {
		t.Fatalf("p50 after window rollover = %v, want 100ms", p)
	}
}

// A column that suddenly stalls must be outrun by the hedge: the
// sibling reconstruction answers first, with the exact bytes the stalled
// device holds.
func TestHedgedReadOutrunsStall(t *testing.T) {
	code := testCode(t)
	const sectorSize, stripes = 64, 4
	gates := map[string]*gateDevice{}
	mems := map[string]*store.MemDevice{}
	var servers []Server
	for i := 0; i < 6; i++ {
		name := fmt.Sprintf("s%d", i)
		servers = append(servers, Server{Name: name, URL: "local://" + name})
	}
	v, err := Open(context.Background(), Config{
		Fleet:      &Fleet{Servers: servers},
		VolumeName: "hedge-test",
		Code:       code,
		SectorSize: sectorSize,
		Stripes:    stripes,
		Workers:    2,
		Dial: func(ctx context.Context, server Server) (store.Device, error) {
			mem := store.NewMemDevice(stripes*code.R(), sectorSize)
			g := &gateDevice{FaultDevice: mem}
			gates[server.Name], mems[server.Name] = g, mem
			return g, nil
		},
		Hedge: &HedgeConfig{
			Percentile: 0.5,
			MinDelay:   2 * time.Millisecond,
			MaxDelay:   20 * time.Millisecond,
			MinSamples: 4,
			Window:     64,
		},
		Monitor: MonitorConfig{Interval: time.Hour}, // out of the way
	})
	if err != nil {
		t.Fatal(err)
	}
	defer v.Close()

	ctx := context.Background()
	for b := 0; b < v.Blocks(); b++ {
		data := bytes.Repeat([]byte{byte(b + 1)}, sectorSize)
		if err := v.WriteBlock(ctx, b, data); err != nil {
			t.Fatal(err)
		}
	}
	if err := v.Sync(ctx); err != nil {
		t.Fatal(err)
	}

	hd, ok := v.devs[0].(*hedgedColumn)
	if !ok {
		t.Fatalf("column 0 device is %T, want *hedgedColumn", v.devs[0])
	}
	// Warm the latency tracker with fast reads.
	for i := 0; i < 8; i++ {
		if err := hd.ReadSectors(ctx, 0, [][]byte{make([]byte, sectorSize)}); err != nil {
			t.Fatal(err)
		}
	}

	// Stall column 0's backend and read through the hedge.
	victim := v.Placement()[0].Name
	gates[victim].delay.Store(int64(300 * time.Millisecond))
	bufs := make([][]byte, code.R())
	for i := range bufs {
		bufs[i] = make([]byte, sectorSize)
	}
	begin := time.Now()
	if err := hd.ReadSectors(ctx, 0, bufs); err != nil {
		t.Fatalf("hedged read: %v", err)
	}
	took := time.Since(begin)
	if took >= 250*time.Millisecond {
		t.Fatalf("hedged read took %v — the hedge did not outrun the 300ms stall", took)
	}

	// The reconstruction must equal what the stalled device holds.
	want := make([][]byte, code.R())
	for i := range want {
		want[i] = make([]byte, sectorSize)
	}
	if err := mems[victim].ReadSectors(ctx, 0, want); err != nil {
		t.Fatal(err)
	}
	for i := range want {
		if !bytes.Equal(bufs[i], want[i]) {
			t.Fatalf("hedged sector %d differs from device content", i)
		}
	}

	st := v.Stats()
	if st.HedgesLaunched == 0 || st.HedgeWins == 0 {
		t.Fatalf("hedge counters %+v, want ≥1 launched and ≥1 win", st)
	}
}

// Below MinSamples no hedge may launch, however slow the primary.
func TestHedgeWaitsForSamples(t *testing.T) {
	code := testCode(t)
	const sectorSize, stripes = 64, 2
	var servers []Server
	for i := 0; i < 6; i++ {
		servers = append(servers, Server{Name: fmt.Sprintf("s%d", i), URL: "local://"})
	}
	v, err := Open(context.Background(), Config{
		Fleet:      &Fleet{Servers: servers},
		Code:       code,
		SectorSize: sectorSize,
		Stripes:    stripes,
		Dial: func(ctx context.Context, server Server) (store.Device, error) {
			return &gateDevice{FaultDevice: store.NewMemDevice(stripes*code.R(), sectorSize)}, nil
		},
		Hedge:   &HedgeConfig{MinSamples: 1 << 30},
		Monitor: MonitorConfig{Interval: time.Hour},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer v.Close()
	hd := v.devs[0].(*hedgedColumn)
	if err := hd.ReadSectors(context.Background(), 0, [][]byte{make([]byte, sectorSize)}); err != nil {
		t.Fatal(err)
	}
	if st := v.Stats(); st.HedgesLaunched != 0 {
		t.Fatalf("hedge launched with no latency history: %+v", st)
	}
}
