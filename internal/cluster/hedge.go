package cluster

import (
	"context"
	"sort"
	"sync"
	"time"

	"stair/internal/store"
	"stair/internal/store/mem"
)

// HedgeConfig tunes hedged column reads.
type HedgeConfig struct {
	// Percentile of recent read latencies at which the hedge launches.
	// 0 selects 0.9: a hedge fires on roughly the slowest tenth of
	// reads, so the added sibling load stays marginal while the tail
	// beyond p90 is clipped.
	Percentile float64
	// MinDelay/MaxDelay clamp the computed hedge delay, so a burst of
	// fast samples cannot make hedging frantic nor a burst of slow ones
	// disable it. Zero values select 500µs and 100ms.
	MinDelay time.Duration
	MaxDelay time.Duration
	// Window is the latency sample ring size. 0 selects 256.
	Window int
	// MinSamples is how many completed reads must be observed before
	// the first hedge; below it there is no trustworthy percentile.
	// 0 selects 16.
	MinSamples int
}

func (cfg HedgeConfig) withDefaults() HedgeConfig {
	if cfg.Percentile <= 0 || cfg.Percentile >= 1 {
		cfg.Percentile = 0.9
	}
	if cfg.MinDelay <= 0 {
		cfg.MinDelay = 500 * time.Microsecond
	}
	if cfg.MaxDelay <= 0 {
		cfg.MaxDelay = 100 * time.Millisecond
	}
	if cfg.Window <= 0 {
		cfg.Window = 256
	}
	if cfg.MinSamples <= 0 {
		cfg.MinSamples = 16
	}
	return cfg
}

// latencyTracker keeps a ring of recent primary-read latencies and
// answers percentile queries over it.
type latencyTracker struct {
	mu      sync.Mutex
	samples []time.Duration
	next    int
	count   int
}

func newLatencyTracker(window int) *latencyTracker {
	return &latencyTracker{samples: make([]time.Duration, window)}
}

func (t *latencyTracker) record(d time.Duration) {
	t.mu.Lock()
	t.samples[t.next] = d
	t.next = (t.next + 1) % len(t.samples)
	if t.count < len(t.samples) {
		t.count++
	}
	t.mu.Unlock()
}

// percentile returns the p-quantile of the recorded window, or false
// when fewer than minSamples reads have completed.
func (t *latencyTracker) percentile(p float64, minSamples int) (time.Duration, bool) {
	t.mu.Lock()
	if t.count < minSamples {
		t.mu.Unlock()
		return 0, false
	}
	snap := make([]time.Duration, t.count)
	copy(snap, t.samples[:t.count])
	t.mu.Unlock()
	sort.Slice(snap, func(i, j int) bool { return snap[i] < snap[j] })
	idx := int(p * float64(len(snap)))
	if idx >= len(snap) {
		idx = len(snap) - 1
	}
	return snap[idx], true
}

// hedgedColumn wraps one column with tail-tolerant reads: when the
// primary read exceeds the tracked latency percentile, the extent is
// reconstructed from the n−1 sibling columns through the code's repair
// path, and the first usable answer wins. Both racers write private
// scratch — the loser may complete long after the caller returned, and
// must not scribble over the caller's buffers.
//
// Only reads hedge. Writes have exactly one home, and the store's
// degraded machinery already covers write-side failures.
type hedgedColumn struct {
	*column
	v       *Volume
	cfg     HedgeConfig
	tracker *latencyTracker
}

func newHedgedColumn(col *column, v *Volume, cfg HedgeConfig) *hedgedColumn {
	cfg = cfg.withDefaults()
	return &hedgedColumn{column: col, v: v, cfg: cfg, tracker: newLatencyTracker(cfg.Window)}
}

// usable reports whether a read outcome can be handed to the store:
// success, or a typed partial loss its repair path knows how to take.
func usable(err error) bool {
	if err == nil {
		return true
	}
	_, ok := store.AsSectorErrors(err)
	return ok
}

// scratchFor builds a private, pool-backed buffer set shaped like bufs
// and returns its backing flat. The flat goes back to the pool only
// when the racer that owns it has delivered its result over a live
// context; an abandoned racer (caller returned first, or context died)
// keeps referencing its scratch, so that flat is left to the GC
// instead — recycling it would let the straggler scribble over
// unrelated data.
func scratchFor(bufs [][]byte, sectorSize int) ([][]byte, []byte) {
	flat := mem.Acquire(len(bufs) * sectorSize)
	out := make([][]byte, len(bufs))
	for i := range out {
		out[i] = flat[i*sectorSize : (i+1)*sectorSize]
	}
	return out, flat
}

func copyOut(dst, src [][]byte) {
	for i := range dst {
		copy(dst[i], src[i])
	}
}

// ReadSectors serves the vectored read with a hedge: primary first,
// reconstruction racer if the primary outlives the tracked percentile.
func (h *hedgedColumn) ReadSectors(ctx context.Context, start int, bufs [][]byte) error {
	if start+len(bufs) > h.v.dataSectors {
		// The extent touches the integrity sidecar region past the data
		// sectors. Sidecar records are per-device metadata — not encoded
		// across columns — so the stripe-shaped reconstruction racer has
		// nothing to rebuild them from; serve directly.
		return h.column.ReadSectors(ctx, start, bufs)
	}
	delay, ok := h.tracker.percentile(h.cfg.Percentile, h.cfg.MinSamples)
	if !ok {
		// Not enough history to hedge: serve directly, feed the tracker.
		begin := time.Now()
		err := h.column.ReadSectors(ctx, start, bufs)
		if usable(err) {
			h.tracker.record(time.Since(begin))
		}
		return err
	}
	if delay < h.cfg.MinDelay {
		delay = h.cfg.MinDelay
	}
	if delay > h.cfg.MaxDelay {
		delay = h.cfg.MaxDelay
	}

	primaryBufs, primaryFlat := scratchFor(bufs, h.SectorSize())
	primary := make(chan error, 1)
	begin := time.Now()
	go func() { primary <- h.column.ReadSectors(ctx, start, primaryBufs) }()

	timer := time.NewTimer(delay)
	defer timer.Stop()
	select {
	case err := <-primary:
		if usable(err) {
			h.tracker.record(time.Since(begin))
			copyOut(bufs, primaryBufs)
		}
		if ctx.Err() == nil {
			mem.Release(primaryFlat)
		}
		return err
	case <-ctx.Done():
		// The primary racer is still running; its scratch stays with it.
		return ctx.Err()
	case <-timer.C:
	}

	// The primary blew its percentile: race a sibling reconstruction.
	h.v.counters.hedgesLaunched.Add(1)
	hctx, hcancel := context.WithCancel(ctx)
	defer hcancel()
	hedgeBufs, hedgeFlat := scratchFor(bufs, h.SectorSize())
	hedge := make(chan error, 1)
	go func() { hedge <- h.v.reconstructExtent(hctx, h.idx, start, hedgeBufs) }()

	// Each racer's scratch is released in the arm that receives its
	// result (the racer no longer references it); the loser still in
	// flight when the caller returns keeps its flat, which falls to the
	// GC.
	var primErr error
	primDone, hedgeDone := false, false
	for {
		select {
		case err := <-primary:
			primDone = true
			h.tracker.record(time.Since(begin))
			if usable(err) {
				h.v.counters.hedgeLosses.Add(1)
				copyOut(bufs, primaryBufs)
				if ctx.Err() == nil {
					mem.Release(primaryFlat)
				}
				return err
			}
			if ctx.Err() == nil {
				mem.Release(primaryFlat)
			}
			primErr = err
		case err := <-hedge:
			hedgeDone = true
			if err == nil {
				h.v.counters.hedgeWins.Add(1)
				copyOut(bufs, hedgeBufs)
				if hctx.Err() == nil {
					mem.Release(hedgeFlat)
				}
				return nil
			}
			h.v.counters.hedgeFails.Add(1)
			if hctx.Err() == nil {
				mem.Release(hedgeFlat)
			}
		case <-ctx.Done():
			return ctx.Err()
		}
		if primDone && hedgeDone {
			// Both racers failed hard; the primary's error is the
			// truthful one for the store's degraded bookkeeping.
			return primErr
		}
	}
}
