package cluster

import (
	"context"
	"net/http/httptest"
	"testing"
	"time"

	"stair/internal/store"
	"stair/internal/store/devtest"
)

// The cluster-backed device — a placement column dialled over the
// NetDevice transport, with the per-backend coalescer in the stack —
// must present the exact same Device contract as a local backend.
func TestDeviceConformanceClusterColumn(t *testing.T) {
	devtest.Run(t, func(t *testing.T, sectors, sectorSize int) store.FaultDevice {
		srv := httptest.NewServer(store.NewDeviceServer(store.NewMemDevice(sectors, sectorSize)))
		t.Cleanup(srv.Close)
		dev, err := store.DialNetDevice(context.Background(), srv.URL, srv.Client())
		if err != nil {
			t.Fatal(err)
		}
		wrap := func(d store.Device) store.Device {
			return store.NewCoalescingDevice(d, store.CoalesceOptions{Window: 50 * time.Microsecond})
		}
		return newColumn(0, Server{Name: "s0", URL: srv.URL}, dev, wrap)
	})
}

// A dead column answers exactly like a wholly failed device: fast
// ErrDeviceFailed on I/O, Failed() true, no transport touched.
func TestColumnDeadFastFail(t *testing.T) {
	srv := httptest.NewServer(store.NewDeviceServer(store.NewMemDevice(8, 64)))
	t.Cleanup(srv.Close)
	dev, err := store.DialNetDevice(context.Background(), srv.URL, srv.Client())
	if err != nil {
		t.Fatal(err)
	}
	col := newColumn(0, Server{Name: "s0", URL: srv.URL}, dev, nil)
	col.markDead()
	begin := time.Now()
	err = col.ReadSectors(context.Background(), 0, [][]byte{make([]byte, 64)})
	if err != store.ErrDeviceFailed {
		t.Fatalf("dead column read: %v, want ErrDeviceFailed", err)
	}
	if took := time.Since(begin); took > 100*time.Millisecond {
		t.Fatalf("dead column took %v to answer — did it touch the transport?", took)
	}
	if !col.Failed() {
		t.Fatal("dead column reports healthy")
	}
}

// Transport errors on live I/O reach the failure detector; typed
// device answers do not.
func TestColumnSuspicion(t *testing.T) {
	srv := httptest.NewServer(store.NewDeviceServer(store.NewMemDevice(8, 64)))
	dev, err := store.DialNetDevice(context.Background(), srv.URL, srv.Client())
	if err != nil {
		t.Fatal(err)
	}
	dev.SetRetryPolicy(store.RetryPolicy{MaxAttempts: 1})
	col := newColumn(0, Server{Name: "s0", URL: srv.URL}, dev, nil)
	suspects := make(chan int, 4)
	col.onSuspect = func(c int, err error) { suspects <- c }

	// A typed partial loss is a device state, not transport trouble.
	if err := col.InjectSectorError(2); err != nil {
		t.Fatal(err)
	}
	if err := col.ReadSectors(context.Background(), 2, [][]byte{make([]byte, 64)}); err == nil {
		t.Fatal("read of bad sector succeeded")
	}
	select {
	case <-suspects:
		t.Fatal("SectorErrors raised a transport suspicion")
	default:
	}

	// Kill the server: the transport error must raise a suspicion.
	srv.CloseClientConnections()
	srv.Close()
	if err := col.ReadSectors(context.Background(), 0, [][]byte{make([]byte, 64)}); err == nil {
		t.Fatal("read through dead transport succeeded")
	}
	select {
	case c := <-suspects:
		if c != 0 {
			t.Fatalf("suspicion names column %d, want 0", c)
		}
	case <-time.After(time.Second):
		t.Fatal("transport error raised no suspicion")
	}
}
