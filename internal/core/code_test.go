package core

import (
	"fmt"
	"testing"

	"stair/internal/rs"
)

// exemplary returns the paper's running example: n=8, r=4, m=2, e=(1,1,2)
// (Figure 2), with the requested placement.
func exemplary(t *testing.T, p Placement) *Code {
	t.Helper()
	c, err := New(Config{N: 8, R: 4, M: 2, E: []int{1, 1, 2}, Placement: p})
	if err != nil {
		t.Fatalf("exemplary config: %v", err)
	}
	return c
}

func TestConfigValidation(t *testing.T) {
	cases := []struct {
		name string
		cfg  Config
		ok   bool
	}{
		{"exemplary", Config{N: 8, R: 4, M: 2, E: []int{1, 1, 2}}, true},
		{"no sector tolerance", Config{N: 8, R: 4, M: 2}, true},
		{"m zero", Config{N: 4, R: 4, M: 0, E: []int{1}}, true},
		{"e equals r", Config{N: 6, R: 4, M: 1, E: []int{4}}, true},
		{"idr style", Config{N: 5, R: 4, M: 1, E: []int{2, 2, 2, 2}}, true},
		{"unsorted e ok", Config{N: 8, R: 4, M: 2, E: []int{2, 1, 1}}, true},
		{"outside", Config{N: 8, R: 4, M: 2, E: []int{1, 1, 2}, Placement: Outside}, true},
		{"w16", Config{N: 8, R: 4, M: 2, E: []int{1, 2}, W: 16}, true},
		{"n too small", Config{N: 0, R: 4, M: 0}, false},
		{"r too small", Config{N: 4, R: 0, M: 1}, false},
		{"m negative", Config{N: 4, R: 4, M: -1}, false},
		{"m >= n", Config{N: 4, R: 4, M: 4}, false},
		{"e too long", Config{N: 4, R: 4, M: 2, E: []int{1, 1, 1}}, false},
		{"e element zero", Config{N: 8, R: 4, M: 2, E: []int{0, 1}}, false},
		{"e element > r", Config{N: 8, R: 4, M: 2, E: []int{5}}, false},
		{"bad w", Config{N: 8, R: 4, M: 2, E: []int{1}, W: 7}, false},
		{"w4 too small", Config{N: 20, R: 4, M: 2, E: []int{1}, W: 4}, false},
		{"huge for w8", Config{N: 300, R: 4, M: 2, E: []int{1}, W: 8}, false},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := New(tc.cfg)
			if (err == nil) != tc.ok {
				t.Errorf("New(%+v) err=%v, want ok=%v", tc.cfg, err, tc.ok)
			}
		})
	}
}

func TestConfigNormalizationSortsE(t *testing.T) {
	c, err := New(Config{N: 8, R: 4, M: 2, E: []int{2, 1, 1}})
	if err != nil {
		t.Fatal(err)
	}
	e := c.E()
	if e[0] != 1 || e[1] != 1 || e[2] != 2 {
		t.Errorf("E not sorted: %v", e)
	}
}

func TestAutoFieldSelection(t *testing.T) {
	small, err := New(Config{N: 8, R: 16, M: 1, E: []int{2}})
	if err != nil {
		t.Fatal(err)
	}
	if small.Field().W() != 8 {
		t.Errorf("small config chose w=%d, want 8", small.Field().W())
	}
	big, err := New(Config{N: 260, R: 4, M: 1, E: []int{2}})
	if err != nil {
		t.Fatal(err)
	}
	if big.Field().W() != 16 {
		t.Errorf("big config chose w=%d, want 16", big.Field().W())
	}
}

func TestDerivedParameters(t *testing.T) {
	c := exemplary(t, Inside)
	if c.MPrime() != 3 || c.S() != 4 {
		t.Errorf("m'=%d s=%d, want 3, 4", c.MPrime(), c.S())
	}
	if c.rows != 6 || c.cols != 11 {
		t.Errorf("canonical grid %dx%d, want 6x11", c.rows, c.cols)
	}
	// Crow=(11,6), Ccol=(6,4) per §3.
	if c.crow.Eta() != 11 || c.crow.Kappa() != 6 {
		t.Errorf("Crow=(%d,%d), want (11,6)", c.crow.Eta(), c.crow.Kappa())
	}
	if c.ccol.Eta() != 6 || c.ccol.Kappa() != 4 {
		t.Errorf("Ccol=(%d,%d), want (6,4)", c.ccol.Eta(), c.ccol.Kappa())
	}
}

func TestNumDataCells(t *testing.T) {
	in := exemplary(t, Inside)
	// r(n−m) − s = 4·6 − 4 = 20 data cells inside.
	if got := in.NumDataCells(); got != 20 {
		t.Errorf("inside data cells = %d, want 20", got)
	}
	out := exemplary(t, Outside)
	// Outside keeps all 24 data cells; globals live outside.
	if got := out.NumDataCells(); got != 24 {
		t.Errorf("outside data cells = %d, want 24", got)
	}
	if len(out.parityCells) != 2*4+4 {
		t.Errorf("outside parity cells = %d, want 12", len(out.parityCells))
	}
}

// costUpstairsFormula is paper Eq. 5.
func costUpstairsFormula(n, r, m, s, eMax int) int {
	return (n-m)*(m*r+s) + r*(n-m)*eMax
}

// costDownstairsFormula is paper Eq. 6.
func costDownstairsFormula(n, r, m, mPrime, s int) int {
	return (n-m)*(m+mPrime)*r + r*s
}

func sum(e []int) int {
	t := 0
	for _, v := range e {
		t += v
	}
	return t
}

func maxOf(e []int) int {
	m := 0
	for _, v := range e {
		if v > m {
			m = v
		}
	}
	return m
}

// TestCostFormulas pins the schedule Mult_XOR counts to the paper's
// closed forms (Eqs. 5 and 6) across a parameter sweep, for both
// placements.
func TestCostFormulas(t *testing.T) {
	type cfg struct {
		n, r, m int
		e       []int
	}
	cases := []cfg{
		{8, 4, 2, []int{1, 1, 2}},
		{8, 8, 2, []int{4}},
		{8, 8, 2, []int{1, 3}},
		{8, 8, 2, []int{2, 2}},
		{8, 8, 2, []int{1, 1, 2}},
		{8, 8, 2, []int{1, 1, 1, 1}},
		{16, 16, 1, []int{1, 2}},
		{16, 16, 3, []int{2, 3}},
		{6, 4, 1, []int{4}},
		{5, 4, 0, []int{1, 2}},
		{9, 5, 2, []int{1}},
		{6, 6, 2, []int{2, 2, 2, 2}},
		{8, 4, 2, nil},
	}
	for _, tc := range cases {
		for _, p := range []Placement{Inside, Outside} {
			name := fmt.Sprintf("n%d r%d m%d e%v %v", tc.n, tc.r, tc.m, tc.e, p)
			t.Run(name, func(t *testing.T) {
				c, err := New(Config{N: tc.n, R: tc.r, M: tc.m, E: tc.e, Placement: p})
				if err != nil {
					t.Fatal(err)
				}
				s, eMax := sum(tc.e), maxOf(tc.e)
				wantUp := costUpstairsFormula(tc.n, tc.r, tc.m, s, eMax)
				wantDown := costDownstairsFormula(tc.n, tc.r, tc.m, len(tc.e), s)
				if got := c.Cost(MethodUpstairs); got != wantUp {
					t.Errorf("upstairs cost = %d, want %d (Eq. 5)", got, wantUp)
				}
				if got := c.Cost(MethodDownstairs); got != wantDown {
					t.Errorf("downstairs cost = %d, want %d (Eq. 6)", got, wantDown)
				}
				if c.Cost(MethodStandard) <= 0 && tc.m+len(tc.e) > 0 {
					t.Error("standard cost should be positive")
				}
				chosen := c.Cost(MethodAuto)
				for _, m := range []Method{MethodUpstairs, MethodDownstairs, MethodStandard} {
					if c.Cost(m) < chosen {
						t.Errorf("auto method %v (cost %d) beaten by %v (cost %d)",
							c.Method(), chosen, m, c.Cost(m))
					}
				}
			})
		}
	}
}

// TestFig9CostShape verifies the qualitative claims of Figure 9 for
// n=8, m=2, s=4: parity reuse beats standard encoding, upstairs cost
// grows with e_max, downstairs cost grows with m'.
func TestFig9CostShape(t *testing.T) {
	es := [][]int{{4}, {1, 3}, {2, 2}, {1, 1, 2}, {1, 1, 1, 1}}
	for _, r := range []int{8, 16, 24, 32} {
		var prevUpEmax, prevUp int
		var prevDownMPrime, prevDown int
		for _, e := range es {
			c, err := New(Config{N: 8, R: r, M: 2, E: e})
			if err != nil {
				t.Fatal(err)
			}
			up, down, std := c.Cost(MethodUpstairs), c.Cost(MethodDownstairs), c.Cost(MethodStandard)
			if best := min(up, down); best > std {
				t.Errorf("r=%d e=%v: reuse methods (%d) worse than standard (%d)", r, e, best, std)
			}
			if prevUp != 0 && maxOf(e) > prevUpEmax && up < prevUp {
				// For fixed s, upstairs cost is monotone in e_max
				// (Eq. 5 depends on e only through e_max)... but the
				// list is ordered by decreasing e_max, so check the
				// opposite direction below instead.
				_ = up
			}
			if prevDown != 0 && len(e) > prevDownMPrime && down < prevDown {
				t.Errorf("r=%d: downstairs cost decreased while m' grew: %d -> %d", r, prevDown, down)
			}
			prevUpEmax, prevUp = maxOf(e), up
			prevDownMPrime, prevDown = len(e), down
		}
		// e=(4) has the largest e_max, e=(1,1,1,1) the smallest: upstairs
		// must be monotone non-increasing across the list.
		first, _ := New(Config{N: 8, R: r, M: 2, E: []int{4}})
		last, _ := New(Config{N: 8, R: r, M: 2, E: []int{1, 1, 1, 1}})
		if first.Cost(MethodUpstairs) < last.Cost(MethodUpstairs) {
			t.Errorf("r=%d: upstairs cost should grow with e_max", r)
		}
		if first.Cost(MethodDownstairs) > last.Cost(MethodDownstairs) {
			t.Errorf("r=%d: downstairs cost should grow with m'", r)
		}
	}
}

func TestMethodSelectionMatchesCostOrder(t *testing.T) {
	// When m' is small, downstairs should win; when m' is large,
	// upstairs should win (§5.3 discussion).
	small, err := New(Config{N: 8, R: 16, M: 2, E: []int{4}}) // m'=1
	if err != nil {
		t.Fatal(err)
	}
	if small.Method() != MethodDownstairs {
		t.Errorf("m'=1: chose %v (up=%d down=%d std=%d), want downstairs",
			small.Method(), small.Cost(MethodUpstairs), small.Cost(MethodDownstairs), small.Cost(MethodStandard))
	}
	large, err := New(Config{N: 8, R: 16, M: 2, E: []int{1, 1, 1, 1}}) // m'=4
	if err != nil {
		t.Fatal(err)
	}
	if large.Method() != MethodUpstairs {
		t.Errorf("m'=4: chose %v (up=%d down=%d std=%d), want upstairs",
			large.Method(), large.Cost(MethodUpstairs), large.Cost(MethodDownstairs), large.Cost(MethodStandard))
	}
}

func TestStorageEfficiency(t *testing.T) {
	// Paper §7.2: n=8, r=16, m=1, E = (112−s)/128.
	for s := 0; s <= 6; s++ {
		got := StorageEfficiency(8, 16, 1, s)
		want := float64(112-s) / 128
		if got != want {
			t.Errorf("s=%d: efficiency %v, want %v", s, got, want)
		}
	}
	c := exemplary(t, Inside)
	if got, want := c.StorageEfficiency(), float64(4*6-4)/float64(4*8); got != want {
		t.Errorf("exemplary efficiency %v, want %v", got, want)
	}
}

func TestSpaceSavingDevices(t *testing.T) {
	// §6.1: saving = m' − s/r devices; §2 example: e=(1,4), r arbitrary.
	if got := SpaceSavingDevices([]int{1, 4}, 4); got != 2-5.0/4 {
		t.Errorf("saving = %v", got)
	}
	// As r→∞ the saving approaches m'.
	if got := SpaceSavingDevices([]int{1, 1, 1, 1}, 1024); got <= 3.9 {
		t.Errorf("saving %v should approach m'=4", got)
	}
}

// TestSection2IDRComparison pins the worked example of §2: for n=8, m=2,
// β=4, the IDR scheme spends 24 redundant sectors per stripe while STAIR
// with e=(1,4) spends five.
func TestSection2IDRComparison(t *testing.T) {
	idrRedundant := 4 * 6 // β × (n−m)
	stairRedundant := sum([]int{1, 4})
	if idrRedundant != 24 || stairRedundant != 5 {
		t.Errorf("IDR=%d (want 24), STAIR=%d (want 5)", idrRedundant, stairRedundant)
	}
	// And the config must actually construct.
	if _, err := New(Config{N: 8, R: 8, M: 2, E: []int{1, 4}}); err != nil {
		t.Errorf("e=(1,4) config rejected: %v", err)
	}
}

func TestCellClassification(t *testing.T) {
	c := exemplary(t, Inside)
	cases := []struct {
		cell Cell
		want CellClass
	}{
		{Cell{0, 0}, ClassData},
		{Cell{5, 0}, ClassData},
		{Cell{3, 3}, ClassGlobalParity}, // ĝ0,0
		{Cell{4, 3}, ClassGlobalParity}, // ĝ0,1
		{Cell{5, 2}, ClassGlobalParity}, // ĝ0,2
		{Cell{5, 3}, ClassGlobalParity}, // ĝ1,2
		{Cell{5, 1}, ClassData},
		{Cell{6, 0}, ClassRowParity},
		{Cell{7, 3}, ClassRowParity},
	}
	for _, tc := range cases {
		got, err := c.Class(tc.cell)
		if err != nil {
			t.Fatalf("Class(%v): %v", tc.cell, err)
		}
		if got != tc.want {
			t.Errorf("Class(%v) = %v, want %v", tc.cell, got, tc.want)
		}
	}
	if _, err := c.Class(Cell{8, 0}); err == nil {
		t.Error("out-of-range cell accepted")
	}
	// Outside placement has no stair cells.
	out := exemplary(t, Outside)
	if got, _ := out.Class(Cell{5, 3}); got != ClassData {
		t.Errorf("outside (5,3) = %v, want data", got)
	}
}

func TestCellNames(t *testing.T) {
	c := exemplary(t, Inside)
	cases := []struct {
		row, col int
		want     string
	}{
		{0, 0, "d0,0"},
		{3, 3, "ĝ0,0"},
		{2, 5, "ĝ0,2"},
		{0, 6, "p0,0"},
		{3, 7, "p3,1"},
		{1, 8, "p'1,0"},
		{4, 0, "d*0,0"},
		{5, 6, "p*1,0"},
		{4, 8, "g0,0"},
		{5, 8, "dummy"},
		{5, 10, "g1,2"},
	}
	for _, tc := range cases {
		if got := c.CellName(tc.row, tc.col); got != tc.want {
			t.Errorf("CellName(%d,%d) = %q, want %q", tc.row, tc.col, got, tc.want)
		}
	}
}

func TestStringers(t *testing.T) {
	if MethodUpstairs.String() != "upstairs" || MethodDownstairs.String() != "downstairs" ||
		MethodStandard.String() != "standard" || MethodAuto.String() != "auto" {
		t.Error("Method.String wrong")
	}
	if Method(99).String() == "" || Placement(99).String() == "" {
		t.Error("unknown enum should render")
	}
	if Inside.String() != "inside" || Outside.String() != "outside" {
		t.Error("Placement.String wrong")
	}
	cfg := Config{N: 8, R: 4, M: 2, E: []int{1, 1, 2}, W: 8}
	if cfg.String() == "" {
		t.Error("Config.String empty")
	}
	if (Cell{1, 2}).String() != "(1,2)" {
		t.Error("Cell.String wrong")
	}
	for _, cc := range []CellClass{ClassData, ClassRowParity, ClassGlobalParity, CellClass(9)} {
		if cc.String() == "" {
			t.Error("CellClass.String empty")
		}
	}
}

func TestVandermondeKindWorks(t *testing.T) {
	c, err := New(Config{N: 8, R: 4, M: 2, E: []int{1, 1, 2}, Kind: rs.Vandermonde})
	if err != nil {
		t.Fatal(err)
	}
	if got := c.Cost(MethodUpstairs); got != costUpstairsFormula(8, 4, 2, 4, 2) {
		t.Errorf("vandermonde upstairs cost = %d", got)
	}
}
