package core

import (
	"errors"
	"fmt"
	"sort"
	"strconv"
	"strings"
)

// ErrUnrecoverable reports a failure pattern outside the code's coverage
// that peeling cannot repair.
var ErrUnrecoverable = errors.New("core: failure pattern is unrecoverable")

// maxDecodeCacheEntries bounds the per-pattern schedule cache. Real
// deployments see few distinct patterns (scrub finds them one at a time);
// the bound only guards against adversarial churn.
const maxDecodeCacheEntries = 256

func (c *Code) checkLost(lost []Cell) ([]int, error) {
	seen := make(map[int]bool, len(lost))
	idxs := make([]int, 0, len(lost))
	for _, cell := range lost {
		if cell.Col < 0 || cell.Col >= c.n || cell.Row < 0 || cell.Row >= c.r {
			return nil, fmt.Errorf("core: lost cell %v out of range (n=%d, r=%d)", cell, c.n, c.r)
		}
		idx := c.cellIdx(cell.Row, cell.Col)
		if seen[idx] {
			continue
		}
		seen[idx] = true
		idxs = append(idxs, idx)
	}
	sort.Ints(idxs)
	return idxs, nil
}

func lostKey(idxs []int) string {
	var b strings.Builder
	for i, v := range idxs {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(strconv.Itoa(v))
	}
	return b.String()
}

// decodePlan returns (building, compiling and caching as needed) the
// repair plan for a lost-cell pattern, or nil if the pattern is
// unrecoverable. Caching the compiled plan — not just the schedule —
// means repeated repairs of the same pattern (the scrubber draining a
// failed chunk stripe by stripe) pay the source-major compilation once.
func (c *Code) decodePlan(idxs []int) (*plan, error) {
	key := lostKey(idxs)
	c.decodeMu.Lock()
	pl, hit := c.decodeCache[key]
	c.decodeMu.Unlock()
	if hit {
		return pl, nil
	}
	sch, err := c.buildDecodeSchedule(idxs)
	if err != nil {
		return nil, err
	}
	if sch != nil {
		pl = c.compilePlan(sch)
	}
	c.decodeMu.Lock()
	if len(c.decodeCache) >= maxDecodeCacheEntries {
		c.decodeCache = make(map[string]*plan)
	}
	c.decodeCache[key] = pl
	c.decodeMu.Unlock()
	return pl, nil
}

// seedDecodeKnowns marks surviving real cells and the global parities as
// known: stored values (Outside) or the zero constants fixed by the
// extended construction (Inside).
func (c *Code) seedDecodeKnowns(p *peeler, lost map[int]bool) {
	for col := 0; col < c.n; col++ {
		for row := 0; row < c.r; row++ {
			if idx := c.cellIdx(row, col); !lost[idx] {
				p.known[idx] = true
			}
		}
	}
	for l := 0; l < c.mPrime; l++ {
		for h := 0; h < c.e[l]; h++ {
			p.markKnown(c.r+h, c.n+l, c.placement == Inside)
		}
	}
}

// deferMostLost marks as deferred the m chunks with the most lost cells
// (§4.3), breaking ties toward lower column indices. Chunks without
// losses are never deferred.
func (c *Code) deferMostLost(p *peeler, idxs []int) {
	perChunk := make([]int, c.n)
	for _, idx := range idxs {
		_, col := c.cellRC(idx)
		perChunk[col]++
	}
	for k := 0; k < c.m; k++ {
		best, bestCol := 0, -1
		for col := 0; col < c.n; col++ {
			if !p.deferred[col] && perChunk[col] > best {
				best, bestCol = perChunk[col], col
			}
		}
		if bestCol < 0 {
			return
		}
		p.deferred[bestCol] = true
	}
}

// buildDecodeSchedule runs the practical peeling order of §4.3 over the
// canonical stripe: surviving real cells (and global parities) are known,
// lost cells plus all intermediate/virtual/dummy symbols are unknown.
// If the structured order stalls (possible only outside the constructed
// coverage), an unrestricted generic peel is attempted as a best-effort
// fallback. Returns nil when the pattern is unrecoverable.
func (c *Code) buildDecodeSchedule(idxs []int) (*schedule, error) {
	lost := make(map[int]bool, len(idxs))
	for _, i := range idxs {
		lost[i] = true
	}
	p := newPeeler(c)
	c.seedDecodeKnowns(p, lost)
	c.deferMostLost(p, idxs)
	if err := p.practical(idxs); err != nil {
		return nil, err
	}
	if !p.allKnown(idxs) {
		g := newPeeler(c)
		c.seedDecodeKnowns(g, lost)
		if err := g.generic(idxs); err != nil {
			return nil, err
		}
		if !g.allKnown(idxs) {
			return nil, nil
		}
		p = g
	}
	p.sched.prune(idxs, c.rows*c.cols)
	return p.sched, nil
}

// Repair reconstructs the lost cells of a stripe in place. The lost cells'
// current contents are ignored. It returns ErrUnrecoverable when the
// pattern exceeds the coverage defined by m and e (and is not otherwise
// peelable by luck).
func (c *Code) Repair(st *Stripe, lost []Cell) error {
	if err := c.validateStripe(st); err != nil {
		return err
	}
	idxs, err := c.checkLost(lost)
	if err != nil {
		return err
	}
	if len(idxs) == 0 {
		return nil
	}
	pl, err := c.decodePlan(idxs)
	if err != nil {
		return err
	}
	if pl == nil {
		return fmt.Errorf("%w: %d lost cells", ErrUnrecoverable, len(idxs))
	}
	cells, release := c.env(st)
	defer release()
	c.runPlan(pl, cells)
	return nil
}

// CanRecover reports whether a failure pattern is repairable, without
// touching any data. The answer is exact: it builds (and caches) the
// repair schedule.
func (c *Code) CanRecover(lost []Cell) (bool, error) {
	idxs, err := c.checkLost(lost)
	if err != nil {
		return false, err
	}
	pl, err := c.decodePlan(idxs)
	if err != nil {
		return false, err
	}
	return pl != nil, nil
}

// RepairCost returns the number of Mult_XORs actually executed to repair
// the given pattern, or ErrUnrecoverable.
func (c *Code) RepairCost(lost []Cell) (int, error) {
	idxs, err := c.checkLost(lost)
	if err != nil {
		return 0, err
	}
	pl, err := c.decodePlan(idxs)
	if err != nil {
		return 0, err
	}
	if pl == nil {
		return 0, ErrUnrecoverable
	}
	return pl.sch.actualCost, nil
}

// CoverageContains reports whether a failure pattern lies within the
// coverage the code is constructed to tolerate: at most m chunks may be
// fully failed (any number of lost sectors), and after setting those
// aside, the per-chunk loss counts of the remaining chunks, sorted
// ascending, must fit under the (largest) elements of e. Patterns within
// the coverage are always recoverable (paper §4.2); patterns outside it
// may still happen to peel, which CanRecover detects.
func (c *Code) CoverageContains(lost []Cell) (bool, error) {
	idxs, err := c.checkLost(lost)
	if err != nil {
		return false, err
	}
	perChunk := make([]int, c.n)
	for _, idx := range idxs {
		_, col := c.cellRC(idx)
		perChunk[col]++
	}
	counts := append([]int{}, perChunk...)
	sort.Sort(sort.Reverse(sort.IntSlice(counts)))
	// The m most-affected chunks are absorbed by device-failure slots.
	counts = counts[min(c.m, len(counts)):]
	// Remaining non-zero counts must fit e's largest slots.
	var nz []int
	for _, v := range counts {
		if v > 0 {
			nz = append(nz, v)
		}
	}
	if len(nz) > c.mPrime {
		return false, nil
	}
	sort.Ints(nz)
	offset := c.mPrime - len(nz)
	for i, v := range nz {
		if v > c.e[offset+i] {
			return false, nil
		}
	}
	return true, nil
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
