package core

import (
	"reflect"
	"testing"
)

// TestUpstairsDecodeTable2 reproduces Table 2 of the paper: the upstairs
// decoding step sequence for the exemplary configuration (n=8, r=4, m=2,
// e=(1,1,2), outside globals) under the worst-case stair erasure of
// Figure 4 (chunks 6 and 7 failed; d3,3, d3,4, d2,5, d3,5 lost).
//
// Note: the paper's Table 2 lists the outputs of steps 9-12 as
// "p_{i,1}, p_{i,2}"; with m=2 row-parity indices run 0..1, so we pin the
// consistent names p_{i,0}, p_{i,1} (the table's second index is a
// typographical slip, cf. Figure 2's layout).
func TestUpstairsDecodeTable2(t *testing.T) {
	c := exemplary(t, Outside)
	lost := []Cell{
		{Col: 6, Row: 0}, {Col: 6, Row: 1}, {Col: 6, Row: 2}, {Col: 6, Row: 3},
		{Col: 7, Row: 0}, {Col: 7, Row: 1}, {Col: 7, Row: 2}, {Col: 7, Row: 3},
		{Col: 3, Row: 3}, {Col: 4, Row: 3}, {Col: 5, Row: 2}, {Col: 5, Row: 3},
	}
	steps, err := c.UpstairsDecodeTrace(lost)
	if err != nil {
		t.Fatal(err)
	}
	type want struct {
		coding  string
		inputs  []string
		outputs []string
	}
	wants := []want{
		{"Ccol", []string{"d0,0", "d1,0", "d2,0", "d3,0"}, []string{"d*0,0", "d*1,0"}},
		{"Ccol", []string{"d0,1", "d1,1", "d2,1", "d3,1"}, []string{"d*0,1", "d*1,1"}},
		{"Ccol", []string{"d0,2", "d1,2", "d2,2", "d3,2"}, []string{"d*0,2", "d*1,2"}},
		{"Crow", []string{"d*0,0", "d*0,1", "d*0,2", "g0,0", "g0,1", "g0,2"}, []string{"d*0,3", "d*0,4", "d*0,5"}},
		{"Ccol", []string{"d0,3", "d1,3", "d2,3", "d*0,3"}, []string{"d3,3", "d*1,3"}},
		{"Ccol", []string{"d0,4", "d1,4", "d2,4", "d*0,4"}, []string{"d3,4", "d*1,4"}},
		{"Crow", []string{"d*1,0", "d*1,1", "d*1,2", "d*1,3", "d*1,4", "g1,2"}, []string{"d*1,5"}},
		{"Ccol", []string{"d0,5", "d1,5", "d*0,5", "d*1,5"}, []string{"d2,5", "d3,5"}},
		{"Crow", []string{"d0,0", "d0,1", "d0,2", "d0,3", "d0,4", "d0,5"}, []string{"p0,0", "p0,1"}},
		{"Crow", []string{"d1,0", "d1,1", "d1,2", "d1,3", "d1,4", "d1,5"}, []string{"p1,0", "p1,1"}},
		{"Crow", []string{"d2,0", "d2,1", "d2,2", "d2,3", "d2,4", "d2,5"}, []string{"p2,0", "p2,1"}},
		{"Crow", []string{"d3,0", "d3,1", "d3,2", "d3,3", "d3,4", "d3,5"}, []string{"p3,0", "p3,1"}},
	}
	if len(steps) != len(wants) {
		for i, s := range steps {
			t.Logf("step %d: %v", i+1, s)
		}
		t.Fatalf("got %d steps, want %d (Table 2)", len(steps), len(wants))
	}
	for i, w := range wants {
		got := steps[i]
		if got.Coding != w.coding {
			t.Errorf("step %d coding = %s, want %s", i+1, got.Coding, w.coding)
		}
		if !reflect.DeepEqual(got.Inputs, w.inputs) {
			t.Errorf("step %d inputs = %v, want %v", i+1, got.Inputs, w.inputs)
		}
		if !reflect.DeepEqual(got.Outputs, w.outputs) {
			t.Errorf("step %d outputs = %v, want %v", i+1, got.Outputs, w.outputs)
		}
	}
}

// TestDownstairsEncodeTable3 reproduces Table 3: the downstairs encoding
// step sequence for the exemplary configuration with inside globals.
// The zeroed outside global parities (g_{h,l} = 0) appear as inputs in
// the paper's table; multiplications by a known-zero region are elided
// here, so they are omitted from the input lists.
func TestDownstairsEncodeTable3(t *testing.T) {
	c := exemplary(t, Inside)
	steps, err := c.EncodeTrace(MethodDownstairs)
	if err != nil {
		t.Fatal(err)
	}
	type want struct {
		coding  string
		inputs  []string
		outputs []string
	}
	wants := []want{
		{"Crow", []string{"d0,0", "d0,1", "d0,2", "d0,3", "d0,4", "d0,5"},
			[]string{"p0,0", "p0,1", "p'0,0", "p'0,1", "p'0,2"}},
		{"Crow", []string{"d1,0", "d1,1", "d1,2", "d1,3", "d1,4", "d1,5"},
			[]string{"p1,0", "p1,1", "p'1,0", "p'1,1", "p'1,2"}},
		{"Ccol", []string{"p'0,2", "p'1,2"}, []string{"p'2,2", "p'3,2"}},
		{"Crow", []string{"d2,0", "d2,1", "d2,2", "d2,3", "d2,4", "p'2,2"},
			[]string{"ĝ0,2", "p2,0", "p2,1", "p'2,0", "p'2,1"}},
		{"Ccol", []string{"p'0,1", "p'1,1", "p'2,1"}, []string{"p'3,1"}},
		{"Ccol", []string{"p'0,0", "p'1,0", "p'2,0"}, []string{"p'3,0"}},
		{"Crow", []string{"d3,0", "d3,1", "d3,2", "p'3,0", "p'3,1", "p'3,2"},
			[]string{"ĝ0,0", "ĝ0,1", "ĝ1,2", "p3,0", "p3,1"}},
	}
	if len(steps) != len(wants) {
		for i, s := range steps {
			t.Logf("step %d: %v", i+1, s)
		}
		t.Fatalf("got %d steps, want %d (Table 3)", len(steps), len(wants))
	}
	for i, w := range wants {
		got := steps[i]
		if got.Coding != w.coding {
			t.Errorf("step %d coding = %s, want %s", i+1, got.Coding, w.coding)
		}
		if !reflect.DeepEqual(got.Inputs, w.inputs) {
			t.Errorf("step %d inputs = %v, want %v", i+1, got.Inputs, w.inputs)
		}
		if !reflect.DeepEqual(got.Outputs, w.outputs) {
			t.Errorf("step %d outputs = %v, want %v", i+1, got.Outputs, w.outputs)
		}
	}
}

// TestUpstairsEncodeTraceShape: upstairs encoding of the exemplary inside
// configuration proceeds bottom-up: the three good chunks are
// column-encoded first, the stair cells appear before any row parity.
func TestUpstairsEncodeTraceShape(t *testing.T) {
	c := exemplary(t, Inside)
	steps, err := c.EncodeTrace(MethodUpstairs)
	if err != nil {
		t.Fatal(err)
	}
	if len(steps) == 0 {
		t.Fatal("no steps")
	}
	for i := 0; i < 3; i++ {
		if steps[i].Coding != "Ccol" {
			t.Errorf("step %d = %v, want a column encode of a good chunk", i+1, steps[i])
		}
	}
	// Find positions of the first ĝ output and the first row parity
	// output ("ĝ" is neither 'p' nor 'd' in its first byte).
	firstG, firstP := -1, -1
	for i, s := range steps {
		for _, out := range s.Outputs {
			if len(out) > 1 && out[0] != 'p' && out[0] != 'd' && firstG < 0 {
				firstG = i
			}
			if out[0] == 'p' && out[1] != '\'' && out[1] != '*' && firstP < 0 {
				firstP = i
			}
		}
	}
	if firstG < 0 || firstP < 0 {
		t.Fatalf("missing outputs: firstG=%d firstP=%d", firstG, firstP)
	}
	if firstG > firstP {
		t.Errorf("upstairs should produce global parities (step %d) before row parities (step %d)", firstG, firstP)
	}
}

func TestEncodeTraceStandardIsNil(t *testing.T) {
	c := exemplary(t, Inside)
	steps, err := c.EncodeTrace(MethodStandard)
	if err != nil {
		t.Fatal(err)
	}
	if steps != nil {
		t.Error("standard encoding has no solve steps; want nil trace")
	}
}

func TestTraceStepString(t *testing.T) {
	s := TraceStep{Coding: "Crow", Index: 4, Inputs: []string{"a", "b"}, Outputs: []string{"c"}}
	if s.String() != "a,b ⇒ c  (Crow)" {
		t.Errorf("String = %q", s.String())
	}
}

func TestUpstairsDecodeTraceUnrecoverable(t *testing.T) {
	c := exemplary(t, Outside)
	var lost []Cell
	for col := 0; col < 3; col++ {
		for row := 0; row < 4; row++ {
			lost = append(lost, Cell{Col: col, Row: row})
		}
	}
	if _, err := c.UpstairsDecodeTrace(lost); err == nil {
		t.Error("expected error for 3 failed chunks with m=2")
	}
}
