package core

import (
	"fmt"

	"stair/internal/gf"
)

// env builds the canonical-cell → sector mapping for one stripe, backing
// temporaries with pooled scratch memory. release returns the scratch to
// the pool.
func (c *Code) env(st *Stripe) (cells [][]byte, release func()) {
	if v := c.cellsPool.Get(); v != nil {
		cells = *(v.(*[][]byte))
	} else {
		cells = make([][]byte, c.rows*c.cols)
	}
	for col := 0; col < c.n; col++ {
		for row := 0; row < c.r; row++ {
			cells[c.cellIdx(row, col)] = st.Cells[col*c.r+row]
		}
	}
	if c.placement == Outside {
		for l := 0; l < c.mPrime; l++ {
			for h := 0; h < c.e[l]; h++ {
				cells[c.cellIdx(c.r+h, c.n+l)] = st.Globals[c.globalOrd(l, h)]
			}
		}
	}
	if c.tempCount == 0 {
		return cells, func() { c.releaseEnv(cells) }
	}
	need := c.tempCount * st.SectorSize
	var buf []byte
	if v := c.scratch.Get(); v != nil {
		b := *(v.(*[]byte))
		if cap(b) >= need {
			buf = b[:need]
		}
	}
	if buf == nil {
		buf = make([]byte, need)
	}
	for idx, slot := range c.tempSlot {
		if slot >= 0 {
			off := int(slot) * st.SectorSize
			cells[idx] = buf[off : off+st.SectorSize : off+st.SectorSize]
		}
	}
	return cells, func() {
		c.scratch.Put(&buf)
		c.releaseEnv(cells)
	}
}

// releaseEnv clears the environment (so pooled slabs are not pinned)
// and returns the cell vector to the pool.
func (c *Code) releaseEnv(cells [][]byte) {
	clear(cells)
	c.cellsPool.Put(&cells)
}

// run executes a schedule over the environment. Each op overwrites its
// destination with a linear combination of its sources.
func (c *Code) run(sch *schedule, cells [][]byte) {
	for i := range sch.ops {
		o := &sch.ops[i]
		dst := cells[o.dst]
		if len(o.terms) == 0 {
			gf.Zero(dst)
			continue
		}
		c.f.MultRegion(dst, cells[o.terms[0].src], o.terms[0].coeff)
		for _, t := range o.terms[1:] {
			c.f.MultXOR(dst, cells[t.src], t.coeff)
		}
	}
}

// acquireScratchStripe returns a pooled whole-stripe scratch. Contents
// are unspecified; the caller must overwrite every cell it reads. The
// sector size is already validated by the caller's validateStripe.
func (c *Code) acquireScratchStripe(sectorSize int) *Stripe {
	if v := c.stripePool.Get(); v != nil {
		if sc := v.(*Stripe); sc.SectorSize == sectorSize {
			return sc
		}
	}
	sc, _ := c.NewStripe(sectorSize)
	return sc
}

// scheduleFor resolves a method to its schedule.
func (c *Code) scheduleFor(m Method) (*schedule, error) {
	switch m {
	case MethodAuto:
		return c.scheduleFor(c.method)
	case MethodUpstairs:
		return c.upSched, nil
	case MethodDownstairs:
		return c.downSched, nil
	case MethodStandard:
		return c.stdSched, nil
	default:
		return nil, fmt.Errorf("core: unknown method %v", m)
	}
}

// Encode fills the stripe's parity cells (row parities plus inside global
// parities, or outside Globals) from its data cells, using the
// automatically selected cheapest method.
func (c *Code) Encode(st *Stripe) error { return c.EncodeWith(st, MethodAuto) }

// EncodeWith encodes with an explicit method. All three methods produce
// identical parity values (§5.1.3); they differ only in Mult_XOR count.
func (c *Code) EncodeWith(st *Stripe, m Method) error {
	if err := c.validateStripe(st); err != nil {
		return err
	}
	p, err := c.planFor(m)
	if err != nil {
		return err
	}
	cells, release := c.env(st)
	defer release()
	c.runPlan(p, cells)
	return nil
}

// Verify re-encodes the stripe's data into pooled scratch and reports
// whether every stored parity cell matches. It is the scrub primitive
// used by the array simulator; the scratch stripe is recycled across
// calls so a volume-wide scrub does not clone every stripe it visits.
func (c *Code) Verify(st *Stripe) (bool, error) {
	if err := c.validateStripe(st); err != nil {
		return false, err
	}
	clone := c.acquireScratchStripe(st.SectorSize)
	defer c.stripePool.Put(clone)
	// Only the data cells feed the re-encode; Encode overwrites every
	// parity cell, so stale scratch contents are harmless.
	for _, idx := range c.dataCells {
		row, col := c.cellRC(idx)
		copy(clone.Sector(col, row), st.Sector(col, row))
	}
	if err := c.Encode(clone); err != nil {
		return false, err
	}
	for _, idx := range c.parityCells {
		row, col := c.cellRC(idx)
		var got, want []byte
		if l, h, ok := c.globalOf(row, col); ok {
			got = st.Globals[c.globalOrd(l, h)]
			want = clone.Globals[c.globalOrd(l, h)]
		} else {
			got = st.Sector(col, row)
			want = clone.Sector(col, row)
		}
		for i := range got {
			if got[i] != want[i] {
				return false, nil
			}
		}
	}
	return true, nil
}
