package core

import (
	"fmt"
	"sync"

	"stair/internal/gf"
	"stair/internal/rs"
)

// Method identifies an encoding method (§5.1, §5.3).
type Method int

const (
	// MethodAuto selects the method with the fewest Mult_XORs, the
	// policy the paper's implementation uses (§5.3).
	MethodAuto Method = iota
	// MethodUpstairs encodes bottom-to-top via recovery (§5.1.1).
	MethodUpstairs
	// MethodDownstairs encodes top-to-bottom, right-to-left (§5.1.2).
	MethodDownstairs
	// MethodStandard computes each parity symbol directly as a linear
	// combination of data symbols, with no parity reuse (§5.3). This is
	// how the SD-code comparator encodes.
	MethodStandard
)

func (m Method) String() string {
	switch m {
	case MethodAuto:
		return "auto"
	case MethodUpstairs:
		return "upstairs"
	case MethodDownstairs:
		return "downstairs"
	case MethodStandard:
		return "standard"
	default:
		return fmt.Sprintf("Method(%d)", int(m))
	}
}

// parityRef links a data cell to one parity cell it contributes to.
type parityRef struct {
	cell  int32 // canonical index of the parity cell
	coeff uint32
}

// Code is a compiled STAIR code instance. It is immutable after New and
// safe for concurrent use by multiple goroutines.
type Code struct {
	cfg Config

	n, r, m   int
	e         []int
	mPrime    int
	s         int
	eMax      int
	rows      int // canonical rows: r + eMax
	cols      int // canonical cols: n + m'
	placement Placement

	f    *gf.Field
	crow *rs.Code // (n+m', n−m), applied to rows
	ccol *rs.Code // (r+e_max, r), applied to columns

	// dataCells lists canonical indices of data cells in column-major
	// order; dataOrd maps canonical index → ordinal (or -1).
	dataCells []int
	dataOrd   []int
	// parityCells lists canonical indices of all parity targets: row
	// parity cells, then inside stair cells (Inside) or corner globals
	// (Outside).
	parityCells []int

	upSched   *schedule
	downSched *schedule
	stdSched  *schedule
	method    Method // resolved (never MethodAuto)

	// Source-major fused plans compiled from the schedules above, plus
	// the data-path knobs they were compiled under (see plan.go).
	planMode planMode
	planTile int
	upPlan   *plan
	downPlan *plan
	stdPlan  *plan

	// dataDeps[ord] lists the parity cells affected by data cell ord,
	// derived from the standard-encoding generator (§5.2 uneven parity
	// relations). Used by Update and the update-penalty analysis.
	dataDeps [][]parityRef

	// tempSlot maps canonical index → scratch slot (or -1 when the cell
	// is backed by stripe memory or is a known-zero constant).
	tempSlot  []int32
	tempCount int

	scratch    sync.Pool // *[]byte buffers of tempCount × sectorSize
	cellsPool  sync.Pool // *[][]byte environments of rows × cols cells
	fanPool    sync.Pool // *[][]byte fused-kernel destination vectors
	stripePool sync.Pool // *Stripe whole-stripe scratch (Verify)

	decodeMu    sync.Mutex
	decodeCache map[string]*plan // nil entry = proven unrecoverable
}

// New compiles a STAIR code for the given configuration.
func New(cfg Config) (*Code, error) {
	norm, err := cfg.normalized()
	if err != nil {
		return nil, err
	}
	c := &Code{
		cfg:       norm,
		n:         norm.N,
		r:         norm.R,
		m:         norm.M,
		e:         norm.E,
		mPrime:    norm.MPrime(),
		s:         norm.S(),
		eMax:      norm.EMax(),
		placement: norm.Placement,
		f:         norm.field(),
	}
	c.rows = c.r + c.eMax
	c.cols = c.n + c.mPrime

	c.crow, err = rs.New(c.f, c.n+c.mPrime, c.n-c.m, norm.Kind)
	if err != nil {
		return nil, fmt.Errorf("core: building Crow: %w", err)
	}
	c.ccol, err = rs.New(c.f, c.r+c.eMax, c.r, norm.Kind)
	if err != nil {
		return nil, fmt.Errorf("core: building Ccol: %w", err)
	}

	c.planMode, c.planTile, err = planConfigFromEnv()
	if err != nil {
		return nil, err
	}

	c.indexCells()
	if err := c.buildEncodeSchedules(); err != nil {
		return nil, err
	}
	c.buildStandardSchedule()
	c.chooseMethod()
	c.indexScratch()
	c.upPlan = c.compilePlan(c.upSched)
	c.downPlan = c.compilePlan(c.downSched)
	c.stdPlan = c.compilePlan(c.stdSched)
	c.decodeCache = make(map[string]*plan)
	return c, nil
}

// indexCells enumerates data and parity cells of the real stripe (plus
// outside globals when applicable).
func (c *Code) indexCells() {
	c.dataOrd = make([]int, c.rows*c.cols)
	for i := range c.dataOrd {
		c.dataOrd[i] = -1
	}
	// Data cells, column-major over the data area.
	for col := 0; col < c.n-c.m; col++ {
		for row := 0; row < c.r; row++ {
			if c.classOf(row, col) != ClassData {
				continue
			}
			idx := c.cellIdx(row, col)
			c.dataOrd[idx] = len(c.dataCells)
			c.dataCells = append(c.dataCells, idx)
		}
	}
	// Row parity cells.
	for col := c.n - c.m; col < c.n; col++ {
		for row := 0; row < c.r; row++ {
			c.parityCells = append(c.parityCells, c.cellIdx(row, col))
		}
	}
	// Global parity cells.
	if c.placement == Inside {
		for l := 0; l < c.mPrime; l++ {
			col := c.n - c.m - c.mPrime + l
			for h := 0; h < c.e[l]; h++ {
				c.parityCells = append(c.parityCells, c.cellIdx(c.r-c.e[l]+h, col))
			}
		}
	} else {
		for l := 0; l < c.mPrime; l++ {
			for h := 0; h < c.e[l]; h++ {
				c.parityCells = append(c.parityCells, c.cellIdx(c.r+h, c.n+l))
			}
		}
	}
}

// seedEncodeKnowns marks the cells known before encoding begins: data
// cells, and for Inside placement the zeroed outside global positions.
func (c *Code) seedEncodeKnowns(p *peeler) {
	for _, idx := range c.dataCells {
		p.known[idx] = true
	}
	if c.placement == Inside {
		for l := 0; l < c.mPrime; l++ {
			for h := 0; h < c.e[l]; h++ {
				p.markKnown(c.r+h, c.n+l, true)
			}
		}
	}
}

// deferParityChunks marks the m row-parity chunks as deferred: during
// encoding they play the role of the m failed chunks of upstairs decoding
// (§5.1.1) and are generated row by row at the end.
func (c *Code) deferParityChunks(p *peeler) {
	for col := c.n - c.m; col < c.n; col++ {
		p.deferred[col] = true
	}
}

func (c *Code) buildEncodeSchedules() error {
	up := newPeeler(c)
	c.seedEncodeKnowns(up)
	c.deferParityChunks(up)
	if err := up.upstairs(c.parityCells); err != nil {
		return err
	}
	if !up.allKnown(c.parityCells) {
		return fmt.Errorf("core: internal error: upstairs encoding stalled for %v", c.cfg)
	}
	up.sched.prune(c.parityCells, c.rows*c.cols)
	c.upSched = up.sched

	down := newPeeler(c)
	c.seedEncodeKnowns(down)
	c.deferParityChunks(down)
	if err := down.downstairs(c.parityCells); err != nil {
		return err
	}
	if !down.allKnown(c.parityCells) {
		return fmt.Errorf("core: internal error: downstairs encoding stalled for %v", c.cfg)
	}
	down.sched.prune(c.parityCells, c.rows*c.cols)
	c.downSched = down.sched
	return nil
}

// buildStandardSchedule derives, by symbolic execution of the upstairs
// schedule, each parity cell as a direct linear combination of data cells
// (the classical Reed-Solomon-style encoding of §5.3). The same
// coefficients give the uneven parity relations of §5.2, stored
// transposed in dataDeps for Update.
func (c *Code) buildStandardSchedule() {
	d := len(c.dataCells)
	vecs := make([][]uint32, c.rows*c.cols)
	for ord, idx := range c.dataCells {
		v := make([]uint32, d)
		v[ord] = 1
		vecs[idx] = v
	}
	for i := range c.upSched.ops {
		o := &c.upSched.ops[i]
		v := make([]uint32, d)
		for _, t := range o.terms {
			sv := vecs[t.src]
			for j, x := range sv {
				if x != 0 {
					v[j] ^= c.f.Mul(t.coeff, x)
				}
			}
		}
		vecs[o.dst] = v
	}
	sch := &schedule{}
	c.dataDeps = make([][]parityRef, d)
	for _, pidx := range c.parityCells {
		v := vecs[pidx]
		o := op{dst: int32(pidx), event: -1}
		for ord, coeff := range v {
			if coeff == 0 {
				continue
			}
			o.terms = append(o.terms, term{src: int32(c.dataCells[ord]), coeff: coeff})
			c.dataDeps[ord] = append(c.dataDeps[ord], parityRef{cell: int32(pidx), coeff: coeff})
		}
		// The paper's standard-encoding cost (§5.3) counts the data
		// symbols contributing to each parity symbol.
		o.width = int32(len(o.terms))
		sch.ops = append(sch.ops, o)
	}
	sch.recount()
	c.stdSched = sch
}

// chooseMethod picks the encoding method with the fewest model Mult_XORs,
// matching the paper's implementation policy (§5.3). Ties prefer the
// reuse-based methods.
func (c *Code) chooseMethod() {
	c.method = MethodUpstairs
	best := c.upSched.modelCost
	if c.downSched.modelCost < best {
		c.method, best = MethodDownstairs, c.downSched.modelCost
	}
	if c.stdSched.modelCost < best {
		c.method = MethodStandard
	}
}

// indexScratch assigns scratch slots to canonical cells not backed by
// stripe memory: intermediate parities, virtual parities and dummy
// globals (and, for Outside placement, nothing extra — the stored
// globals live in the stripe's Globals).
func (c *Code) indexScratch() {
	c.tempSlot = make([]int32, c.rows*c.cols)
	for i := range c.tempSlot {
		c.tempSlot[i] = -1
	}
	slot := int32(0)
	for row := 0; row < c.rows; row++ {
		for col := 0; col < c.cols; col++ {
			if c.isReal(row, col) {
				continue // stripe memory
			}
			if _, _, ok := c.globalOf(row, col); ok {
				// Known-zero constant (Inside) or stripe Globals
				// memory (Outside): either way not scratch.
				continue
			}
			c.tempSlot[c.cellIdx(row, col)] = slot
			slot++
		}
	}
	c.tempCount = int(slot)
}

// Config returns the normalized configuration.
func (c *Code) Config() Config { return c.cfg }

// Field returns the Galois field in use.
func (c *Code) Field() *gf.Field { return c.f }

// KernelName reports which GF region kernel this code's Mult_XOR
// schedules dispatch to (internal/gf runtime CPU dispatch, overridable
// with STAIR_GF_KERNEL) — the single biggest factor in encode/decode
// throughput, recorded alongside benchmark numbers.
func (c *Code) KernelName() string { return c.f.KernelName() }

// N returns the number of chunks per stripe.
func (c *Code) N() int { return c.n }

// R returns the number of sectors per chunk.
func (c *Code) R() int { return c.r }

// M returns the number of tolerated whole-chunk failures.
func (c *Code) M() int { return c.m }

// E returns the (sorted) sector-failure coverage vector.
func (c *Code) E() []int { return append([]int{}, c.e...) }

// S returns the total number of tolerated sector failures, Σ E.
func (c *Code) S() int { return c.s }

// MPrime returns m', the number of chunks that may have sector failures.
func (c *Code) MPrime() int { return c.mPrime }

// Method returns the encoding method chosen by cost comparison.
func (c *Code) Method() Method { return c.method }

// Cost returns the model Mult_XOR count per stripe of the given encoding
// method, using the paper's §5.3 accounting (one Mult_XOR per input of
// each symbol generation). For upstairs and downstairs encoding this
// equals the paper's Eq. 5 and Eq. 6 exactly; it is the quantity of
// Figure 9. MethodAuto returns the cost of the chosen method.
func (c *Code) Cost(m Method) int {
	switch m {
	case MethodUpstairs:
		return c.upSched.modelCost
	case MethodDownstairs:
		return c.downSched.modelCost
	case MethodStandard:
		return c.stdSched.modelCost
	default:
		return c.Cost(c.method)
	}
}

// CostActual returns the number of Mult_XORs the compiled schedule really
// executes. It never exceeds Cost(m): multiplications by zero matrix
// coefficients and by the zeroed outside global parities are elided.
func (c *Code) CostActual(m Method) int {
	switch m {
	case MethodUpstairs:
		return c.upSched.actualCost
	case MethodDownstairs:
		return c.downSched.actualCost
	case MethodStandard:
		return c.stdSched.actualCost
	default:
		return c.CostActual(c.method)
	}
}

// DataCells returns the cells a caller must fill before Encode, in the
// order used by DataCellAt.
func (c *Code) DataCells() []Cell {
	out := make([]Cell, len(c.dataCells))
	for i, idx := range c.dataCells {
		row, col := c.cellRC(idx)
		out[i] = Cell{Col: col, Row: row}
	}
	return out
}

// ParityCells returns the cells Encode fills. For Outside placement the
// s global parities live outside the stripe and are reported with
// Col == N + l, Row == h (matching the Globals layout of Stripe).
func (c *Code) ParityCells() []Cell {
	out := make([]Cell, 0, len(c.parityCells))
	for _, idx := range c.parityCells {
		row, col := c.cellRC(idx)
		if l, h, ok := c.globalOf(row, col); ok {
			out = append(out, Cell{Col: c.n + l, Row: h})
			continue
		}
		out = append(out, Cell{Col: col, Row: row})
	}
	return out
}

// NumDataCells returns the number of data sectors per stripe,
// r·(n−m) − s for Inside placement and r·(n−m) for Outside.
func (c *Code) NumDataCells() int { return len(c.dataCells) }

// Class reports what the given real stripe cell stores.
func (c *Code) Class(cell Cell) (CellClass, error) {
	if cell.Col < 0 || cell.Col >= c.n || cell.Row < 0 || cell.Row >= c.r {
		return 0, fmt.Errorf("core: cell %v out of range (n=%d, r=%d)", cell, c.n, c.r)
	}
	return c.classOf(cell.Row, cell.Col), nil
}

// StorageEfficiency returns the fraction of stripe capacity holding user
// data (paper Eq. 8): (r·(n−m) − s) / (r·n).
func (c *Code) StorageEfficiency() float64 {
	return StorageEfficiency(c.n, c.r, c.m, c.s)
}

// StorageEfficiency computes paper Eq. 8 for arbitrary parameters.
// Setting s = 0 gives the Reed-Solomon efficiency; SD codes with the same
// s have identical efficiency.
func StorageEfficiency(n, r, m, s int) float64 {
	return float64(r*(n-m)-s) / float64(r*n)
}

// SpaceSavingDevices returns how many devices a STAIR code saves over a
// traditional erasure code covering the same failures with m+m' parity
// chunks: m' − s/r (§6.1, Figure 10).
func SpaceSavingDevices(e []int, r int) float64 {
	s := 0
	for _, v := range e {
		s += v
	}
	return float64(len(e)) - float64(s)/float64(r)
}
