package core

import (
	"bytes"
	"fmt"
	"math/rand"
	"sync"
	"testing"
)

// fillData puts deterministic random bytes in every data cell.
func fillData(t *testing.T, c *Code, st *Stripe, seed int64) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	for _, cell := range c.DataCells() {
		rng.Read(st.Sector(cell.Col, cell.Row))
	}
}

func stripesEqual(a, b *Stripe) bool {
	for i := range a.Cells {
		if !bytes.Equal(a.Cells[i], b.Cells[i]) {
			return false
		}
	}
	for i := range a.Globals {
		if !bytes.Equal(a.Globals[i], b.Globals[i]) {
			return false
		}
	}
	return true
}

// TestEncodeMethodsAgree pins §5.1.3: upstairs, downstairs and standard
// encoding produce identical parity values, across configurations and
// placements.
func TestEncodeMethodsAgree(t *testing.T) {
	cases := []Config{
		{N: 8, R: 4, M: 2, E: []int{1, 1, 2}},
		{N: 8, R: 4, M: 2, E: []int{1, 1, 2}, Placement: Outside},
		{N: 6, R: 4, M: 1, E: []int{4}},
		{N: 6, R: 4, M: 1, E: []int{4}, Placement: Outside},
		{N: 5, R: 4, M: 0, E: []int{1, 2}},
		{N: 6, R: 6, M: 2, E: []int{2, 2, 2, 2}},
		{N: 9, R: 5, M: 3, E: []int{1}},
		{N: 8, R: 4, M: 2, E: nil},
		{N: 8, R: 4, M: 2, E: []int{1, 2}, W: 16},
		{N: 6, R: 4, M: 1, E: []int{1, 2}, W: 4},
	}
	for _, cfg := range cases {
		t.Run(cfg.String(), func(t *testing.T) {
			c, err := New(cfg)
			if err != nil {
				t.Fatal(err)
			}
			sectorSize := 16 * c.Field().SymbolBytes()
			mk := func(m Method) *Stripe {
				st, err := c.NewStripe(sectorSize)
				if err != nil {
					t.Fatal(err)
				}
				fillData(t, c, st, 42)
				if err := c.EncodeWith(st, m); err != nil {
					t.Fatalf("EncodeWith(%v): %v", m, err)
				}
				return st
			}
			up := mk(MethodUpstairs)
			down := mk(MethodDownstairs)
			std := mk(MethodStandard)
			if !stripesEqual(up, down) {
				t.Error("upstairs and downstairs disagree")
			}
			if !stripesEqual(up, std) {
				t.Error("upstairs and standard disagree")
			}
		})
	}
}

// TestHomomorphicProperty checks Theorem A.1 on encoded stripes: encode
// every chunk with Ccol to extend it by e_max virtual symbols; each
// augmented row of the canonical stripe must then be a Crow codeword
// whose parity positions match the column-extended intermediate chunks.
func TestHomomorphicProperty(t *testing.T) {
	for _, p := range []Placement{Inside, Outside} {
		c := exemplary(t, p)
		const sectorSize = 8
		st, err := c.NewStripe(sectorSize)
		if err != nil {
			t.Fatal(err)
		}
		fillData(t, c, st, 7)
		if err := c.Encode(st); err != nil {
			t.Fatal(err)
		}

		// Reconstruct the full canonical grid by direct arithmetic.
		grid := make([][]byte, c.rows*c.cols)
		for col := 0; col < c.n; col++ {
			for row := 0; row < c.r; row++ {
				grid[c.cellIdx(row, col)] = st.Sector(col, row)
			}
		}
		// Intermediate parity chunks via Crow on each real row.
		for row := 0; row < c.r; row++ {
			data := make([][]byte, c.n-c.m)
			for j := range data {
				data[j] = grid[c.cellIdx(row, j)]
			}
			parity := make([][]byte, c.m+c.mPrime)
			for k := range parity {
				parity[k] = make([]byte, sectorSize)
			}
			if err := c.crow.EncodeRegions(data, parity); err != nil {
				t.Fatal(err)
			}
			// Row parity chunks must match what Encode stored.
			for k := 0; k < c.m; k++ {
				if !bytes.Equal(parity[k], st.Sector(c.n-c.m+k, row)) {
					t.Fatalf("placement %v: row parity (%d,%d) mismatch", p, c.n-c.m+k, row)
				}
			}
			for l := 0; l < c.mPrime; l++ {
				grid[c.cellIdx(row, c.n+l)] = parity[c.m+l]
			}
		}
		// Augment every column with Ccol.
		for col := 0; col < c.cols; col++ {
			data := make([][]byte, c.r)
			for row := 0; row < c.r; row++ {
				data[row] = grid[c.cellIdx(row, col)]
			}
			parity := make([][]byte, c.eMax)
			for k := range parity {
				parity[k] = make([]byte, sectorSize)
			}
			if err := c.ccol.EncodeRegions(data, parity); err != nil {
				t.Fatal(err)
			}
			for h := 0; h < c.eMax; h++ {
				grid[c.cellIdx(c.r+h, col)] = parity[h]
			}
		}
		// Global parity positions: zero for Inside, the stored Globals
		// for Outside (§5.1 fixes outside globals to zero after
		// relocation).
		for l := 0; l < c.mPrime; l++ {
			for h := 0; h < c.e[l]; h++ {
				got := grid[c.cellIdx(c.r+h, c.n+l)]
				if p == Inside {
					for i, b := range got {
						if b != 0 {
							t.Fatalf("inside: outside-global g%d,%d byte %d = %d, want 0", h, l, i, b)
						}
					}
				} else if !bytes.Equal(got, st.Globals[c.globalOrd(l, h)]) {
					t.Fatalf("outside: stored global g%d,%d does not match column encoding", h, l)
				}
			}
		}
		// Homomorphic property: each augmented row is a Crow codeword.
		for h := 0; h < c.eMax; h++ {
			row := c.r + h
			data := make([][]byte, c.n-c.m)
			for j := range data {
				data[j] = grid[c.cellIdx(row, j)]
			}
			parity := make([][]byte, c.m+c.mPrime)
			for k := range parity {
				parity[k] = make([]byte, sectorSize)
			}
			if err := c.crow.EncodeRegions(data, parity); err != nil {
				t.Fatal(err)
			}
			for k := 0; k < c.m+c.mPrime; k++ {
				if !bytes.Equal(parity[k], grid[c.cellIdx(row, c.n-c.m+k)]) {
					t.Fatalf("placement %v: augmented row %d is not a Crow codeword at parity %d", p, row, k)
				}
			}
		}
	}
}

func TestVerify(t *testing.T) {
	for _, p := range []Placement{Inside, Outside} {
		c := exemplary(t, p)
		st, _ := c.NewStripe(8)
		fillData(t, c, st, 3)
		if err := c.Encode(st); err != nil {
			t.Fatal(err)
		}
		ok, err := c.Verify(st)
		if err != nil || !ok {
			t.Fatalf("placement %v: fresh encode fails Verify: ok=%v err=%v", p, ok, err)
		}
		// Tamper with a parity cell.
		pc := c.ParityCells()[0]
		st.Sector(pc.Col, pc.Row)[0] ^= 0xff
		ok, err = c.Verify(st)
		if err != nil || ok {
			t.Fatalf("placement %v: tampered stripe passes Verify", p)
		}
	}
}

func TestEncodeValidatesStripe(t *testing.T) {
	c := exemplary(t, Inside)
	if err := c.Encode(nil); err == nil {
		t.Error("nil stripe accepted")
	}
	st, _ := c.NewStripe(8)
	st.Cells[3] = st.Cells[3][:4]
	if err := c.Encode(st); err == nil {
		t.Error("ragged stripe accepted")
	}
	st2, _ := c.NewStripe(8)
	st2.N = 7
	if err := c.Encode(st2); err == nil {
		t.Error("wrong geometry accepted")
	}
	st3, _ := c.NewStripe(8)
	st3.Globals = make([][]byte, 1)
	if err := c.Encode(st3); err == nil {
		t.Error("inside placement with Globals accepted")
	}
	// Outside placement requires Globals.
	out := exemplary(t, Outside)
	st4, _ := out.NewStripe(8)
	st4.Globals = nil
	if err := out.Encode(st4); err == nil {
		t.Error("outside placement without Globals accepted")
	}
}

func TestNewStripeValidation(t *testing.T) {
	c := exemplary(t, Inside)
	if _, err := c.NewStripe(0); err == nil {
		t.Error("zero sector size accepted")
	}
	c16, err := New(Config{N: 8, R: 4, M: 2, E: []int{1, 1, 2}, W: 16})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c16.NewStripe(7); err == nil {
		t.Error("odd sector size accepted for w=16")
	}
}

// TestEncodeDeterministic ensures repeated encodes of the same data are
// byte-identical (schedules are deterministic).
func TestEncodeDeterministic(t *testing.T) {
	c := exemplary(t, Inside)
	a, _ := c.NewStripe(32)
	b, _ := c.NewStripe(32)
	fillData(t, c, a, 9)
	fillData(t, c, b, 9)
	if err := c.Encode(a); err != nil {
		t.Fatal(err)
	}
	if err := c.Encode(b); err != nil {
		t.Fatal(err)
	}
	if !stripesEqual(a, b) {
		t.Error("two encodes of identical data differ")
	}
}

// TestConcurrentEncode exercises the scratch pool under concurrency.
func TestConcurrentEncode(t *testing.T) {
	c := exemplary(t, Inside)
	want, _ := c.NewStripe(64)
	fillData(t, c, want, 11)
	if err := c.Encode(want); err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	errs := make(chan error, 16)
	for g := 0; g < 16; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			st, _ := c.NewStripe(64)
			fillData(t, c, st, 11)
			if err := c.Encode(st); err != nil {
				errs <- err
				return
			}
			if !stripesEqual(st, want) {
				errs <- fmt.Errorf("concurrent encode mismatch")
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}

// TestZeroDataEncodesToZeroParity: the code is linear, so the all-zero
// stripe must encode to all-zero parity.
func TestZeroDataEncodesToZeroParity(t *testing.T) {
	c := exemplary(t, Inside)
	st, _ := c.NewStripe(16)
	if err := c.Encode(st); err != nil {
		t.Fatal(err)
	}
	for i, s := range st.Cells {
		for j, b := range s {
			if b != 0 {
				t.Fatalf("cell %d byte %d = %d, want 0", i, j, b)
			}
		}
	}
}

// TestEncodeLinearity: encode(a) XOR encode(b) == encode(a XOR b),
// checked on parity cells.
func TestEncodeLinearity(t *testing.T) {
	c := exemplary(t, Inside)
	a, _ := c.NewStripe(16)
	b, _ := c.NewStripe(16)
	ab, _ := c.NewStripe(16)
	fillData(t, c, a, 1)
	fillData(t, c, b, 2)
	for i := range ab.Cells {
		for j := range ab.Cells[i] {
			ab.Cells[i][j] = a.Cells[i][j] ^ b.Cells[i][j]
		}
	}
	for _, st := range []*Stripe{a, b, ab} {
		if err := c.Encode(st); err != nil {
			t.Fatal(err)
		}
	}
	for _, pc := range c.ParityCells() {
		pa := a.Sector(pc.Col, pc.Row)
		pb := b.Sector(pc.Col, pc.Row)
		pab := ab.Sector(pc.Col, pc.Row)
		for i := range pab {
			if pab[i] != pa[i]^pb[i] {
				t.Fatalf("linearity violated at %v byte %d", pc, i)
			}
		}
	}
}

func TestCostActualNeverExceedsModel(t *testing.T) {
	for _, cfg := range []Config{
		{N: 8, R: 4, M: 2, E: []int{1, 1, 2}},
		{N: 8, R: 4, M: 2, E: []int{1, 1, 2}, Placement: Outside},
		{N: 16, R: 16, M: 2, E: []int{1, 1, 2}},
		{N: 6, R: 4, M: 1, E: []int{4}},
	} {
		c, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		for _, m := range []Method{MethodUpstairs, MethodDownstairs, MethodStandard} {
			if c.CostActual(m) > c.Cost(m) {
				t.Errorf("%v %v: actual %d > model %d", cfg, m, c.CostActual(m), c.Cost(m))
			}
		}
	}
}
