package core

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// TestQuickEncodeRepairRoundtrip drives the central invariant with
// testing/quick: for a random valid configuration, random data and a
// random covered failure pattern, Repair restores the stripe exactly.
func TestQuickEncodeRepairRoundtrip(t *testing.T) {
	property := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		cfg := randomConfig(rng)
		c, err := New(cfg)
		if err != nil {
			return false
		}
		st, err := c.NewStripe(4 * c.Field().SymbolBytes())
		if err != nil {
			return false
		}
		rng2 := rand.New(rand.NewSource(seed ^ 0x5a5a))
		for _, cell := range c.DataCells() {
			rng2.Read(st.Sector(cell.Col, cell.Row))
		}
		if err := c.Encode(st); err != nil {
			return false
		}
		want := st.Clone()
		lost := randomCoveredPattern(rng, c)
		corrupt(st, lost)
		if err := c.Repair(st, lost); err != nil {
			return false
		}
		return stripesEqual(st, want)
	}
	if err := quick.Check(property, &quick.Config{MaxCount: 120}); err != nil {
		t.Error(err)
	}
}

// TestQuickVerifyDetectsTampering: Verify accepts a fresh encode and
// rejects any single flipped parity byte.
func TestQuickVerifyDetectsTampering(t *testing.T) {
	c, err := New(Config{N: 8, R: 4, M: 2, E: []int{1, 1, 2}})
	if err != nil {
		t.Fatal(err)
	}
	property := func(seed int64, which uint16, bytePos uint8) bool {
		st, _ := c.NewStripe(16)
		rng := rand.New(rand.NewSource(seed))
		for _, cell := range c.DataCells() {
			rng.Read(st.Sector(cell.Col, cell.Row))
		}
		if err := c.Encode(st); err != nil {
			return false
		}
		if ok, err := c.Verify(st); err != nil || !ok {
			return false
		}
		parities := c.ParityCells()
		pc := parities[int(which)%len(parities)]
		st.Sector(pc.Col, pc.Row)[int(bytePos)%16] ^= 0x01
		ok, err := c.Verify(st)
		return err == nil && !ok
	}
	if err := quick.Check(property, &quick.Config{MaxCount: 80}); err != nil {
		t.Error(err)
	}
}
