package core

import (
	"math/rand"
	"testing"
)

// TestUpdateMatchesReencode: incrementally updating a data cell must give
// byte-identical parity to a full re-encode of the modified data.
func TestUpdateMatchesReencode(t *testing.T) {
	for _, cfg := range []Config{
		{N: 8, R: 4, M: 2, E: []int{1, 1, 2}},
		{N: 8, R: 4, M: 2, E: []int{1, 1, 2}, Placement: Outside},
		{N: 6, R: 4, M: 1, E: []int{4}},
		{N: 5, R: 4, M: 0, E: []int{1, 2}},
	} {
		t.Run(cfg.String(), func(t *testing.T) {
			c, err := New(cfg)
			if err != nil {
				t.Fatal(err)
			}
			const sectorSize = 16
			st, _ := c.NewStripe(sectorSize)
			fillData(t, c, st, 51)
			if err := c.Encode(st); err != nil {
				t.Fatal(err)
			}
			rng := rand.New(rand.NewSource(53))
			for trial, cell := range c.DataCells() {
				if trial%3 != 0 {
					continue // subsample for speed
				}
				newData := make([]byte, sectorSize)
				rng.Read(newData)
				if err := c.Update(st, cell, newData); err != nil {
					t.Fatalf("Update(%v): %v", cell, err)
				}
				// Full re-encode of a copy for comparison.
				ref := st.Clone()
				if err := c.Encode(ref); err != nil {
					t.Fatal(err)
				}
				if !stripesEqual(st, ref) {
					t.Fatalf("Update(%v) diverges from re-encode", cell)
				}
			}
		})
	}
}

func TestUpdateRejectsParityCells(t *testing.T) {
	c := exemplary(t, Inside)
	st, _ := c.NewStripe(8)
	buf := make([]byte, 8)
	if err := c.Update(st, Cell{Col: 6, Row: 0}, buf); err == nil {
		t.Error("row parity cell accepted")
	}
	if err := c.Update(st, Cell{Col: 3, Row: 3}, buf); err == nil {
		t.Error("stair (global parity) cell accepted")
	}
	if err := c.Update(st, Cell{Col: 0, Row: 0}, buf[:4]); err == nil {
		t.Error("short payload accepted")
	}
	if err := c.Update(st, Cell{Col: -1, Row: 0}, buf); err == nil {
		t.Error("out-of-range cell accepted")
	}
}

// TestUpdatePenaltyBounds: every data symbol affects at least the m row
// parities of its row; the penalty never exceeds the total parity count.
func TestUpdatePenaltyBounds(t *testing.T) {
	c := exemplary(t, Inside)
	total := c.M()*c.R() + c.S()
	for _, cell := range c.DataCells() {
		p, err := c.UpdatePenalty(cell)
		if err != nil {
			t.Fatal(err)
		}
		if p < c.M() {
			t.Errorf("penalty(%v) = %d < m = %d", cell, p, c.M())
		}
		if p > total {
			t.Errorf("penalty(%v) = %d > total parities %d", cell, p, total)
		}
		deps, err := c.ParityDependencies(cell)
		if err != nil {
			t.Fatal(err)
		}
		if len(deps) != p {
			t.Errorf("ParityDependencies(%v) has %d entries, penalty says %d", cell, len(deps), p)
		}
	}
	if got := c.MeanUpdatePenalty(); got < float64(c.M()) || got > float64(total) {
		t.Errorf("mean penalty %v out of bounds", got)
	}
}

// TestParityRelationsProperty51 pins Property 5.1: a parity symbol in row
// i0, column j0 depends only on data symbols d_{i,j} with i ≤ i0 and
// j ≤ j0.
func TestParityRelationsProperty51(t *testing.T) {
	for _, cfg := range []Config{
		{N: 8, R: 4, M: 2, E: []int{1, 1, 2}},
		{N: 8, R: 8, M: 2, E: []int{1, 3}},
		{N: 6, R: 6, M: 1, E: []int{2, 2}},
	} {
		c, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		for ord, cell := range c.DataCells() {
			deps := c.dataDeps[ord]
			for _, pr := range deps {
				row, col := c.cellRC(int(pr.cell))
				if _, _, ok := c.globalOf(row, col); ok {
					continue // outside globals sit outside the grid
				}
				if cell.Row > row || cell.Col > col {
					t.Errorf("cfg %v: parity %s depends on data %s below/right of it",
						cfg, c.CellName(row, col), c.CellName(cell.Row, cell.Col))
				}
			}
		}
	}
}

// TestFigure8DependencySets pins the three worked examples of Figure 8
// for the exemplary configuration: the exact data cells contributing to
// p2,0, ĝ0,1 and p1,1.
func TestFigure8DependencySets(t *testing.T) {
	c := exemplary(t, Inside)
	dependsOn := func(parity Cell) map[Cell]bool {
		set := map[Cell]bool{}
		pidx := c.cellIdx(parity.Row, parity.Col)
		for ord, cell := range c.DataCells() {
			for _, pr := range c.dataDeps[ord] {
				if int(pr.cell) == pidx {
					set[cell] = true
				}
			}
		}
		return set
	}

	// p2,0 (row 2, col 6) depends on all data in rows 0-2, columns 0-5.
	p20 := dependsOn(Cell{Col: 6, Row: 2})
	for col := 0; col <= 5; col++ {
		for row := 0; row <= 2; row++ {
			cell := Cell{Col: col, Row: row}
			if cls, _ := c.Class(cell); cls != ClassData {
				continue
			}
			if !p20[cell] {
				t.Errorf("p2,0 should depend on %v", cell)
			}
		}
	}
	for cell := range p20 {
		if cell.Row > 2 {
			t.Errorf("p2,0 must not depend on %v (row > 2)", cell)
		}
	}

	// ĝ0,1 (row 3, col 4): depends on columns 0-2 and 4, but on no data
	// symbol in column 3 (same tread).
	g01 := dependsOn(Cell{Col: 4, Row: 3})
	for cell := range g01 {
		if cell.Col == 3 {
			t.Errorf("ĝ0,1 must not depend on %v (column 3, same tread)", cell)
		}
		if cell.Col > 4 {
			t.Errorf("ĝ0,1 must not depend on %v (column > 4)", cell)
		}
	}
	for col := 0; col <= 2; col++ {
		for row := 0; row <= 3; row++ {
			if !g01[Cell{Col: col, Row: row}] {
				t.Errorf("ĝ0,1 should depend on (%d,%d)", col, row)
			}
		}
	}
	for row := 0; row <= 2; row++ {
		if !g01[Cell{Col: 4, Row: row}] {
			t.Errorf("ĝ0,1 should depend on (4,%d)", row)
		}
	}

	// p1,1 (row 1, col 7): depends exactly on d1,0..d1,5 (not row 0,
	// same riser).
	p11 := dependsOn(Cell{Col: 7, Row: 1})
	want := map[Cell]bool{}
	for col := 0; col <= 5; col++ {
		want[Cell{Col: col, Row: 1}] = true
	}
	if len(p11) != len(want) {
		t.Errorf("p1,1 depends on %d cells, want %d", len(p11), len(want))
	}
	for cell := range want {
		if !p11[cell] {
			t.Errorf("p1,1 should depend on %v", cell)
		}
	}
	for cell := range p11 {
		if !want[cell] {
			t.Errorf("p1,1 must not depend on %v", cell)
		}
	}
}

// TestUpdatePenaltyGrowsWithM (Figure 14 shape): for fixed e, the mean
// update penalty increases with m.
func TestUpdatePenaltyGrowsWithM(t *testing.T) {
	prev := 0.0
	for m := 1; m <= 3; m++ {
		c, err := New(Config{N: 16, R: 16, M: m, E: []int{1, 1, 2}})
		if err != nil {
			t.Fatal(err)
		}
		got := c.MeanUpdatePenalty()
		if got <= prev {
			t.Errorf("m=%d: mean penalty %v not greater than m=%d's %v", m, got, m-1, prev)
		}
		prev = got
	}
}

// TestUpdatePenaltyRSBaseline: with E empty the code is Reed-Solomon and
// every data symbol affects exactly the m row parities.
func TestUpdatePenaltyRSBaseline(t *testing.T) {
	for m := 1; m <= 3; m++ {
		c, err := New(Config{N: 16, R: 16, M: m})
		if err != nil {
			t.Fatal(err)
		}
		if got := c.MeanUpdatePenalty(); got != float64(m) {
			t.Errorf("m=%d: RS mean penalty %v, want %d", m, got, m)
		}
	}
}

// TestUpdateThenRepair: parity updated incrementally must still support
// repair.
func TestUpdateThenRepair(t *testing.T) {
	c := exemplary(t, Inside)
	st, _ := c.NewStripe(16)
	fillData(t, c, st, 61)
	if err := c.Encode(st); err != nil {
		t.Fatal(err)
	}
	newData := make([]byte, 16)
	rand.New(rand.NewSource(67)).Read(newData)
	if err := c.Update(st, Cell{Col: 0, Row: 0}, newData); err != nil {
		t.Fatal(err)
	}
	want := st.Clone()
	lost := worstCaseLost(c)
	corrupt(st, lost)
	if err := c.Repair(st, lost); err != nil {
		t.Fatal(err)
	}
	if !stripesEqual(st, want) {
		t.Error("repair after incremental update produced wrong bytes")
	}
}
