package core

import (
	"math/rand"
	"strings"
	"testing"
)

// The source-major fused plan must be byte-identical to the op-list
// legacy executor on every public surface: encode (all methods), repair,
// and incremental update, at sector sizes that are smaller than, equal
// to, and ragged against the tile size.

func planTestConfigs() []Config {
	return []Config{
		{N: 8, R: 4, M: 2, E: []int{1, 1, 2}},
		{N: 8, R: 4, M: 2, E: []int{1, 1, 2}, Placement: Outside},
		{N: 6, R: 4, M: 1, E: []int{4}},
		{N: 5, R: 4, M: 0, E: []int{1, 2}},
		{N: 6, R: 4, M: 1, E: []int{1, 2}, W: 4},
		{N: 8, R: 4, M: 2, E: []int{1, 2}, W: 16},
	}
}

// newPlanPair builds the same code twice: once on the fused data path,
// once forced legacy.
func newPlanPair(t *testing.T, cfg Config) (fused, legacy *Code) {
	t.Helper()
	t.Setenv("STAIR_PLAN_MODE", "fused")
	fused, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Setenv("STAIR_PLAN_MODE", "legacy")
	legacy, err = New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Setenv("STAIR_PLAN_MODE", "")
	return fused, legacy
}

func TestPlanFusedMatchesLegacyEncode(t *testing.T) {
	// Sector sizes chosen against a 256-byte tile: sub-tile, exact
	// multiple, and ragged tail.
	t.Setenv("STAIR_PLAN_TILE", "256")
	for _, cfg := range planTestConfigs() {
		t.Run(cfg.String(), func(t *testing.T) {
			fused, legacy := newPlanPair(t, cfg)
			sb := fused.Field().SymbolBytes()
			for _, sectorSize := range []int{2 * sb, 64, 256, 256 + 64, 1024 + 128} {
				for _, m := range []Method{MethodUpstairs, MethodDownstairs, MethodStandard} {
					stF, err := fused.NewStripe(sectorSize)
					if err != nil {
						t.Fatal(err)
					}
					stL, err := legacy.NewStripe(sectorSize)
					if err != nil {
						t.Fatal(err)
					}
					fillData(t, fused, stF, 7)
					fillData(t, legacy, stL, 7)
					if err := fused.EncodeWith(stF, m); err != nil {
						t.Fatalf("fused EncodeWith(%v): %v", m, err)
					}
					if err := legacy.EncodeWith(stL, m); err != nil {
						t.Fatalf("legacy EncodeWith(%v): %v", m, err)
					}
					if !stripesEqual(stF, stL) {
						t.Fatalf("sector=%d method=%v: fused and legacy encodes differ", sectorSize, m)
					}
				}
			}
		})
	}
}

func TestPlanFusedMatchesLegacyRepair(t *testing.T) {
	t.Setenv("STAIR_PLAN_TILE", "256")
	for _, cfg := range planTestConfigs() {
		t.Run(cfg.String(), func(t *testing.T) {
			fused, legacy := newPlanPair(t, cfg)
			rng := rand.New(rand.NewSource(11))
			st, err := fused.NewStripe(256 + 64)
			if err != nil {
				t.Fatal(err)
			}
			fillData(t, fused, st, 9)
			if err := fused.Encode(st); err != nil {
				t.Fatal(err)
			}
			// A handful of in-coverage patterns: single sectors, a whole
			// chunk, chunk + extra sectors.
			patterns := [][]Cell{
				{{Col: 0, Row: 0}},
				{{Col: 1, Row: 2}, {Col: 3, Row: 1}},
			}
			wholeChunk := make([]Cell, fused.R())
			for row := 0; row < fused.R(); row++ {
				wholeChunk[row] = Cell{Col: 0, Row: row}
			}
			patterns = append(patterns, wholeChunk)
			for pi, lost := range patterns {
				ok, err := fused.CanRecover(lost)
				if err != nil {
					t.Fatal(err)
				}
				if !ok {
					continue
				}
				run := func(c *Code) *Stripe {
					cl := st.Clone()
					for _, cell := range lost {
						rng.Read(cl.Sector(cell.Col, cell.Row)) // clobber
					}
					if err := c.Repair(cl, lost); err != nil {
						t.Fatalf("pattern %d: %v", pi, err)
					}
					return cl
				}
				if !stripesEqual(run(fused), run(legacy)) {
					t.Fatalf("pattern %d: fused and legacy repairs differ", pi)
				}
			}
		})
	}
}

func TestPlanFusedMatchesLegacyUpdate(t *testing.T) {
	for _, cfg := range planTestConfigs() {
		t.Run(cfg.String(), func(t *testing.T) {
			fused, legacy := newPlanPair(t, cfg)
			rng := rand.New(rand.NewSource(13))
			sectorSize := 96 * fused.Field().SymbolBytes()
			stF, err := fused.NewStripe(sectorSize)
			if err != nil {
				t.Fatal(err)
			}
			fillData(t, fused, stF, 17)
			if err := fused.Encode(stF); err != nil {
				t.Fatal(err)
			}
			stL := stF.Clone()
			cell := fused.DataCells()[0]
			newData := make([]byte, sectorSize)
			rng.Read(newData)
			if err := fused.Update(stF, cell, newData); err != nil {
				t.Fatal(err)
			}
			if err := legacy.Update(stL, cell, newData); err != nil {
				t.Fatal(err)
			}
			if !stripesEqual(stF, stL) {
				t.Fatal("fused and legacy updates differ")
			}
			// The updated stripe must still verify.
			ok, err := fused.Verify(stF)
			if err != nil {
				t.Fatal(err)
			}
			if !ok {
				t.Fatal("stripe does not verify after fused update")
			}
		})
	}
}

func TestPlanConfigErrors(t *testing.T) {
	cfg := Config{N: 6, R: 4, M: 1, E: []int{2}}
	t.Setenv("STAIR_PLAN_MODE", "turbo")
	if _, err := New(cfg); err == nil || !strings.Contains(err.Error(), "STAIR_PLAN_MODE") {
		t.Errorf("bad STAIR_PLAN_MODE: got err %v", err)
	}
	t.Setenv("STAIR_PLAN_MODE", "")
	for _, tile := range []string{"0", "-64", "100", "abc"} {
		t.Setenv("STAIR_PLAN_TILE", tile)
		if _, err := New(cfg); err == nil || !strings.Contains(err.Error(), "STAIR_PLAN_TILE") {
			t.Errorf("STAIR_PLAN_TILE=%q: got err %v", tile, err)
		}
	}
}

func TestPlanInfo(t *testing.T) {
	c, err := New(Config{N: 8, R: 4, M: 2, E: []int{1, 1, 2}})
	if err != nil {
		t.Fatal(err)
	}
	info := c.PlanInfo()
	if info.Mode != "fused" {
		t.Errorf("Mode = %q, want fused", info.Mode)
	}
	if info.TileBytes != defaultPlanTile {
		t.Errorf("TileBytes = %d, want %d", info.TileBytes, defaultPlanTile)
	}
	if info.Stages == 0 || info.FusedCalls == 0 || info.MaxFanout == 0 {
		t.Errorf("fused plan shape empty: %+v", info)
	}
	if info.Kernel == "" {
		t.Error("Kernel empty")
	}

	// w=16 has no byte split tables: the plan must report legacy.
	c16, err := New(Config{N: 8, R: 4, M: 2, E: []int{1, 2}, W: 16})
	if err != nil {
		t.Fatal(err)
	}
	if info := c16.PlanInfo(); info.Mode != "legacy" {
		t.Errorf("w=16 Mode = %q, want legacy", info.Mode)
	}

	t.Setenv("STAIR_PLAN_MODE", "legacy")
	cl, err := New(Config{N: 8, R: 4, M: 2, E: []int{1, 1, 2}})
	if err != nil {
		t.Fatal(err)
	}
	if info := cl.PlanInfo(); info.Mode != "legacy" || info.Stages != 0 {
		t.Errorf("forced legacy PlanInfo = %+v", info)
	}
}

// TestPlanFusedCoversDecodeCache: repairing twice through the cache must
// reuse the compiled plan (same pointer) rather than recompiling.
func TestPlanDecodeCacheReusesPlan(t *testing.T) {
	c, err := New(Config{N: 8, R: 4, M: 2, E: []int{1, 1, 2}})
	if err != nil {
		t.Fatal(err)
	}
	idxs, err := c.checkLost([]Cell{{Col: 2, Row: 1}})
	if err != nil {
		t.Fatal(err)
	}
	p1, err := c.decodePlan(idxs)
	if err != nil {
		t.Fatal(err)
	}
	p2, err := c.decodePlan(idxs)
	if err != nil {
		t.Fatal(err)
	}
	if p1 == nil || p1 != p2 {
		t.Fatalf("decode plan not cached: %p vs %p", p1, p2)
	}
	if p1.legacy {
		t.Error("w=8 decode plan compiled to legacy")
	}
}
