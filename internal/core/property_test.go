package core

import (
	"math/rand"
	"testing"
)

// randomConfig draws a valid configuration from a broad space.
func randomConfig(rng *rand.Rand) Config {
	n := 2 + rng.Intn(9)     // 2..10
	r := 1 + rng.Intn(8)     // 1..8
	m := rng.Intn(min(4, n)) // 0..min(3, n-1)
	maxMPrime := min(4, n-m)
	mPrime := rng.Intn(maxMPrime + 1)
	e := make([]int, mPrime)
	for i := range e {
		e[i] = 1 + rng.Intn(r)
	}
	p := Inside
	if rng.Intn(2) == 0 {
		p = Outside
	}
	return Config{N: n, R: r, M: m, E: e, Placement: p}
}

// randomCoveredPattern draws a failure pattern within the code's
// coverage: k ≤ m full chunks plus partial chunks matched to a random
// subset of e's slots.
func randomCoveredPattern(rng *rand.Rand, c *Code) []Cell {
	cols := rng.Perm(c.N())
	var lost []Cell
	idx := 0
	// Up to m full chunks.
	nFull := rng.Intn(c.M() + 1)
	for i := 0; i < nFull; i++ {
		col := cols[idx]
		idx++
		for row := 0; row < c.R(); row++ {
			lost = append(lost, Cell{Col: col, Row: row})
		}
	}
	// Partial chunks: pick a random subset of e-slots; chunk for slot l
	// loses up to e[l] sectors.
	e := c.E()
	for l := 0; l < len(e); l++ {
		if rng.Intn(2) == 0 {
			continue
		}
		col := cols[idx]
		idx++
		nSec := 1 + rng.Intn(e[l])
		for _, row := range rng.Perm(c.R())[:nSec] {
			lost = append(lost, Cell{Col: col, Row: row})
		}
	}
	return lost
}

// TestPropertyRoundtrip fuzzes the full pipeline: random config, random
// data, random covered failure pattern, repair, byte equality. This is
// the library's main end-to-end invariant.
func TestPropertyRoundtrip(t *testing.T) {
	rng := rand.New(rand.NewSource(1009))
	trials := 300
	if testing.Short() {
		trials = 60
	}
	for trial := 0; trial < trials; trial++ {
		cfg := randomConfig(rng)
		c, err := New(cfg)
		if err != nil {
			t.Fatalf("trial %d: New(%v): %v", trial, cfg, err)
		}
		lost := randomCoveredPattern(rng, c)
		if covered, err := c.CoverageContains(lost); err != nil || !covered {
			t.Fatalf("trial %d: generated pattern not covered (err=%v): cfg=%v lost=%v", trial, err, cfg, lost)
		}
		st, err := c.NewStripe(4 * c.Field().SymbolBytes())
		if err != nil {
			t.Fatal(err)
		}
		fillData(t, c, st, int64(trial))
		if err := c.Encode(st); err != nil {
			t.Fatalf("trial %d: Encode(%v): %v", trial, cfg, err)
		}
		want := st.Clone()
		corrupt(st, lost)
		if err := c.Repair(st, lost); err != nil {
			t.Fatalf("trial %d: Repair(%v) with %d lost: %v", trial, cfg, len(lost), err)
		}
		if !stripesEqual(st, want) {
			t.Fatalf("trial %d: wrong bytes after repair: cfg=%v lost=%v", trial, cfg, lost)
		}
	}
}

// TestPropertyEncodeMethodsAgreeFuzz: §5.1.3 equality of the three
// methods over random configurations.
func TestPropertyEncodeMethodsAgreeFuzz(t *testing.T) {
	rng := rand.New(rand.NewSource(2003))
	trials := 120
	if testing.Short() {
		trials = 30
	}
	for trial := 0; trial < trials; trial++ {
		cfg := randomConfig(rng)
		c, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		base, err := c.NewStripe(4 * c.Field().SymbolBytes())
		if err != nil {
			t.Fatal(err)
		}
		fillData(t, c, base, int64(trial*3))
		stripes := make([]*Stripe, 3)
		for i, m := range []Method{MethodUpstairs, MethodDownstairs, MethodStandard} {
			st := base.Clone()
			if err := c.EncodeWith(st, m); err != nil {
				t.Fatalf("trial %d: %v with %v: %v", trial, cfg, m, err)
			}
			stripes[i] = st
		}
		if !stripesEqual(stripes[0], stripes[1]) || !stripesEqual(stripes[0], stripes[2]) {
			t.Fatalf("trial %d: methods disagree for %v", trial, cfg)
		}
	}
}

// TestPropertyCostFormulasFuzz: Eqs. 5 and 6 hold over the random
// configuration space.
func TestPropertyCostFormulasFuzz(t *testing.T) {
	rng := rand.New(rand.NewSource(3001))
	for trial := 0; trial < 200; trial++ {
		cfg := randomConfig(rng)
		c, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		s, eMax := c.S(), 0
		if len(c.E()) > 0 {
			eMax = c.E()[len(c.E())-1]
		}
		if got, want := c.Cost(MethodUpstairs), costUpstairsFormula(cfg.N, cfg.R, cfg.M, s, eMax); got != want {
			t.Fatalf("trial %d %v: upstairs %d != Eq5 %d", trial, cfg, got, want)
		}
		if got, want := c.Cost(MethodDownstairs), costDownstairsFormula(cfg.N, cfg.R, cfg.M, len(cfg.E), s); got != want {
			t.Fatalf("trial %d %v: downstairs %d != Eq6 %d", trial, cfg, got, want)
		}
	}
}

// TestPropertyUpdateFuzz: incremental update equals re-encode over random
// configurations.
func TestPropertyUpdateFuzz(t *testing.T) {
	rng := rand.New(rand.NewSource(4001))
	trials := 60
	if testing.Short() {
		trials = 15
	}
	for trial := 0; trial < trials; trial++ {
		cfg := randomConfig(rng)
		c, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if c.NumDataCells() == 0 {
			continue
		}
		sectorSize := 4 * c.Field().SymbolBytes()
		st, _ := c.NewStripe(sectorSize)
		fillData(t, c, st, int64(trial))
		if err := c.Encode(st); err != nil {
			t.Fatal(err)
		}
		cell := c.DataCells()[rng.Intn(c.NumDataCells())]
		newData := make([]byte, sectorSize)
		rng.Read(newData)
		if c.Field().W() == 4 {
			for i := range newData {
				newData[i] &= 0x0f
			}
		}
		if err := c.Update(st, cell, newData); err != nil {
			t.Fatalf("trial %d %v: Update: %v", trial, cfg, err)
		}
		ref := st.Clone()
		if err := c.Encode(ref); err != nil {
			t.Fatal(err)
		}
		if !stripesEqual(st, ref) {
			t.Fatalf("trial %d %v: update != re-encode", trial, cfg)
		}
	}
}
