package core

// A schedule is a pre-compiled sequence of region linear combinations over
// the canonical grid. Executing a schedule is the only work Encode and
// Repair do at runtime; everything data-independent (peeling order, matrix
// inversions, coefficient computation) happens once at schedule-build
// time.
//
// Each op carries two costs. The model cost counts one Mult_XOR per input
// of the solve that produced the symbol (κ = n−m for row solves, r for
// column solves; the number of contributing data symbols for standard
// encoding) — exactly the paper's §5.3 accounting, so schedule model costs
// reproduce Eqs. 5 and 6. The actual cost counts the terms really
// executed, which can be lower because multiplications by the zeroed
// outside global parities (§5.1) and by zero matrix coefficients are
// elided.

// term is one executed Mult_XOR: accumulate coeff·cells[src] into dst.
type term struct {
	src   int32
	coeff uint32
}

// op computes cells[dst] = Σ coeff·cells[src] over its terms. Each dst is
// written by exactly one op in a schedule.
type op struct {
	dst   int32
	event int32 // index into schedule.events (solve-step provenance)
	width int32 // model Mult_XORs for this symbol (κ of the solve)
	terms []term
}

// solveEvent records which row or column solve produced a group of ops;
// the tracer uses events to reproduce the paper's Tables 2 and 3.
type solveEvent struct {
	isCol bool
	index int // row or column index in the canonical grid
}

type schedule struct {
	ops    []op
	events []solveEvent
	// modelCost is the paper-model Mult_XOR count (Figure 9's quantity).
	modelCost int
	// actualCost is the number of Mult_XORs actually executed.
	actualCost int
}

func (s *schedule) recount() {
	s.modelCost, s.actualCost = 0, 0
	for i := range s.ops {
		s.modelCost += int(s.ops[i].width)
		s.actualCost += len(s.ops[i].terms)
	}
}

// prune removes ops whose destination contributes neither to any target
// cell nor to any kept op, sweeping backwards. Because each cell is
// written exactly once and ops only read cells written by earlier ops,
// one backward pass suffices. This is what makes the schedule costs match
// the paper's closed forms: e.g. upstairs encoding never materialises the
// p* virtual parities of row-parity chunks (Eq. 5).
func (s *schedule) prune(targets []int, totalCells int) {
	needed := make([]bool, totalCells)
	for _, t := range targets {
		needed[t] = true
	}
	kept := make([]op, 0, len(s.ops))
	for i := len(s.ops) - 1; i >= 0; i-- {
		o := s.ops[i]
		if !needed[o.dst] {
			continue
		}
		for _, t := range o.terms {
			needed[t.src] = true
		}
		kept = append(kept, o)
	}
	// Restore forward execution order.
	for i, j := 0, len(kept)-1; i < j; i, j = i+1, j-1 {
		kept[i], kept[j] = kept[j], kept[i]
	}
	s.ops = kept
	s.recount()
}

// covers reports whether the schedule computes every target cell.
func (s *schedule) covers(targets []int) bool {
	done := make(map[int32]bool, len(s.ops))
	for i := range s.ops {
		done[s.ops[i].dst] = true
	}
	for _, t := range targets {
		if !done[int32(t)] {
			return false
		}
	}
	return true
}
