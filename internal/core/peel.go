package core

import "fmt"

// The peeling scheduler generalises the paper's upstairs decoding (§4.2):
// repeatedly find a canonical row with ≥ n−m known symbols (a Crow
// codeword determines its remaining symbols) or a canonical column with
// ≥ r known symbols (a Ccol codeword likewise), emit the linear ops that
// recover the unknown symbols, and mark them known. The paper's proof of
// fault tolerance shows this process completes for every failure pattern
// within the coverage defined by m and e.
//
// Different scan orders reproduce the paper's different algorithms:
//
//   - upstairs order (chunk columns left→right, then augmented rows,
//     looped; real rows last) reproduces upstairs decoding/encoding and
//     Table 2;
//   - downstairs order (real rows top→bottom, then intermediate columns
//     right→left, looped) reproduces downstairs encoding and Table 3;
//   - practical order (real rows first — local repair via row parities —
//     then the upstairs loop, then real rows again) reproduces §4.3.
//
// Following §4.2/§4.3, the upstairs machinery never column-solves the
// "deferred" chunks — the m chunks with the most lost symbols (for
// encoding, the m row-parity chunks) — which are recovered row by row at
// the end, and never column-solves intermediate chunks. A separate
// unrestricted generic order exists as a best-effort fallback for
// patterns outside the coverage.

type peeler struct {
	c *Code
	// known marks canonical cells whose value is available; zero marks
	// known cells whose value is identically zero (the zeroed outside
	// global parities of §5.1), which are elided from emitted terms.
	known []bool
	zero  []bool
	// deferred marks chunk columns excluded from upstairs column solves
	// (§4.3: the m chunks with the most lost symbols are recovered last
	// via row parities).
	deferred []bool
	sched    *schedule
}

func newPeeler(c *Code) *peeler {
	return &peeler{
		c:        c,
		known:    make([]bool, c.rows*c.cols),
		zero:     make([]bool, c.rows*c.cols),
		deferred: make([]bool, c.cols),
		sched:    &schedule{},
	}
}

// markKnown marks a canonical cell as available input.
func (p *peeler) markKnown(row, col int, isZero bool) {
	i := p.c.cellIdx(row, col)
	p.known[i] = true
	p.zero[i] = isZero
}

// solveRow checks whether canonical row `row` has at least n−m known
// symbols and, if so, emits ops recovering every unknown symbol in the
// row. Returns true if the row was solved.
func (p *peeler) solveRow(row int) (bool, error) {
	c := p.c
	var have, want []int
	for col := 0; col < c.cols; col++ {
		if p.known[c.cellIdx(row, col)] {
			have = append(have, col)
		} else {
			want = append(want, col)
		}
	}
	if len(want) == 0 {
		return false, nil
	}
	if len(have) < c.crow.Kappa() {
		return false, nil
	}
	k, err := c.crow.SolveCoeffs(have, want)
	if err != nil {
		return false, fmt.Errorf("core: row %d solve: %w", row, err)
	}
	ev := int32(len(p.sched.events))
	p.sched.events = append(p.sched.events, solveEvent{isCol: false, index: row})
	for wi, col := range want {
		o := op{dst: int32(c.cellIdx(row, col)), event: ev, width: int32(c.crow.Kappa())}
		for hi := 0; hi < c.crow.Kappa(); hi++ {
			coeff := k.At(wi, hi)
			src := c.cellIdx(row, have[hi])
			if coeff == 0 || p.zero[src] {
				continue
			}
			o.terms = append(o.terms, term{src: int32(src), coeff: coeff})
		}
		p.sched.ops = append(p.sched.ops, o)
		p.known[o.dst] = true
	}
	return true, nil
}

// solveCol is the column analogue of solveRow, using Ccol (κ = r).
func (p *peeler) solveCol(col int) (bool, error) {
	c := p.c
	var have, want []int
	for row := 0; row < c.rows; row++ {
		if p.known[c.cellIdx(row, col)] {
			have = append(have, row)
		} else {
			want = append(want, row)
		}
	}
	if len(want) == 0 {
		return false, nil
	}
	if len(have) < c.ccol.Kappa() {
		return false, nil
	}
	k, err := c.ccol.SolveCoeffs(have, want)
	if err != nil {
		return false, fmt.Errorf("core: column %d solve: %w", col, err)
	}
	ev := int32(len(p.sched.events))
	p.sched.events = append(p.sched.events, solveEvent{isCol: true, index: col})
	for wi, row := range want {
		o := op{dst: int32(c.cellIdx(row, col)), event: ev, width: int32(c.ccol.Kappa())}
		for hi := 0; hi < c.ccol.Kappa(); hi++ {
			coeff := k.At(wi, hi)
			src := c.cellIdx(have[hi], col)
			if coeff == 0 || p.zero[src] {
				continue
			}
			o.terms = append(o.terms, term{src: int32(src), coeff: coeff})
		}
		p.sched.ops = append(p.sched.ops, o)
		p.known[o.dst] = true
	}
	return true, nil
}

func (p *peeler) allKnown(cells []int) bool {
	for _, i := range cells {
		if !p.known[i] {
			return false
		}
	}
	return true
}

// upstairsLoop runs the §4.2 core: alternate full passes of chunk-column
// solves (left to right, skipping deferred chunks) and augmented-row
// solves (top to bottom) until neither makes progress or all targets are
// known.
func (p *peeler) upstairsLoop(targets []int) error {
	c := p.c
	for {
		progress := false
		for col := 0; col < c.n; col++ {
			if p.deferred[col] {
				continue
			}
			ok, err := p.solveCol(col)
			if err != nil {
				return err
			}
			progress = progress || ok
		}
		for row := c.r; row < c.rows; row++ {
			ok, err := p.solveRow(row)
			if err != nil {
				return err
			}
			progress = progress || ok
		}
		if p.allKnown(targets) || !progress {
			return nil
		}
	}
}

// realRowPass solves every currently solvable real row (local repair via
// row parity symbols, §4.3). Reports whether any row was solved.
func (p *peeler) realRowPass() (bool, error) {
	progress := false
	for row := 0; row < p.c.r; row++ {
		ok, err := p.solveRow(row)
		if err != nil {
			return progress, err
		}
		progress = progress || ok
	}
	return progress, nil
}

// upstairs runs strict upstairs order (§4.2, Table 2): columns and
// augmented rows to a fixpoint, then real rows, repeated until stall.
func (p *peeler) upstairs(targets []int) error {
	for {
		if err := p.upstairsLoop(targets); err != nil {
			return err
		}
		if p.allKnown(targets) {
			return nil
		}
		progress, err := p.realRowPass()
		if err != nil {
			return err
		}
		if p.allKnown(targets) || !progress {
			return nil
		}
	}
}

// practical runs the §4.3 order: local row repair first, then the
// upstairs machinery, then deferred row repairs, until stall.
func (p *peeler) practical(targets []int) error {
	for {
		if _, err := p.realRowPass(); err != nil {
			return err
		}
		if p.allKnown(targets) {
			return nil
		}
		before := len(p.sched.ops)
		if err := p.upstairsLoop(targets); err != nil {
			return err
		}
		if p.allKnown(targets) {
			return nil
		}
		progress, err := p.realRowPass()
		if err != nil {
			return err
		}
		if p.allKnown(targets) {
			return nil
		}
		if !progress && len(p.sched.ops) == before {
			return nil // stalled; caller detects missing targets
		}
	}
}

// downstairs runs the §5.1.2 order: real rows top→bottom, then
// intermediate columns right→left, looped. Only valid for encoding (the
// paper notes this order cannot decode general failure patterns).
func (p *peeler) downstairs(targets []int) error {
	c := p.c
	for {
		progress := false
		for row := 0; row < c.r; row++ {
			ok, err := p.solveRow(row)
			if err != nil {
				return err
			}
			progress = progress || ok
		}
		if p.allKnown(targets) {
			return nil
		}
		for col := c.cols - 1; col >= c.n; col-- {
			ok, err := p.solveCol(col)
			if err != nil {
				return err
			}
			progress = progress || ok
		}
		if p.allKnown(targets) || !progress {
			return nil
		}
	}
}

// generic runs an unrestricted fixpoint over every row and column. It is
// the best-effort fallback for failure patterns outside the constructed
// coverage that nevertheless happen to be peelable.
func (p *peeler) generic(targets []int) error {
	c := p.c
	for {
		progress := false
		for row := 0; row < c.rows; row++ {
			ok, err := p.solveRow(row)
			if err != nil {
				return err
			}
			progress = progress || ok
		}
		for col := 0; col < c.cols; col++ {
			ok, err := p.solveCol(col)
			if err != nil {
				return err
			}
			progress = progress || ok
		}
		if p.allKnown(targets) || !progress {
			return nil
		}
	}
}
