package core

import (
	"fmt"
	"strings"
)

// TraceStep describes one solve step of an encoding or decoding schedule
// in the paper's presentation style (Tables 2 and 3): which codeword was
// solved (a canonical row via Crow or a column via Ccol), which symbols
// were consumed and which were produced.
type TraceStep struct {
	// Coding is "Crow" for row solves and "Ccol" for column solves.
	Coding string
	// Index is the canonical row or column index that was solved.
	Index int
	// Inputs and Outputs are symbol names in the paper's notation.
	Inputs  []string
	Outputs []string
}

func (t TraceStep) String() string {
	return fmt.Sprintf("%s ⇒ %s  (%s)",
		strings.Join(t.Inputs, ","), strings.Join(t.Outputs, ","), t.Coding)
}

// traceOf reconstructs per-event steps from a (pruned) schedule. Inputs
// are the union of source cells of the event's surviving ops that were
// not produced by the same event, in first-use order.
func (c *Code) traceOf(sch *schedule) []TraceStep {
	if len(sch.events) == 0 {
		return nil
	}
	type group struct {
		ops []*op
	}
	groups := make([]group, len(sch.events))
	for i := range sch.ops {
		o := &sch.ops[i]
		if o.event >= 0 {
			groups[o.event].ops = append(groups[o.event].ops, o)
		}
	}
	var steps []TraceStep
	for ev, g := range groups {
		if len(g.ops) == 0 {
			continue
		}
		e := sch.events[ev]
		step := TraceStep{Coding: "Crow", Index: e.index}
		if e.isCol {
			step.Coding = "Ccol"
		}
		seen := make(map[int32]bool)
		produced := make(map[int32]bool)
		for _, o := range g.ops {
			produced[o.dst] = true
		}
		for _, o := range g.ops {
			for _, t := range o.terms {
				if produced[t.src] || seen[t.src] {
					continue
				}
				seen[t.src] = true
				row, col := c.cellRC(int(t.src))
				step.Inputs = append(step.Inputs, c.CellName(row, col))
			}
			row, col := c.cellRC(int(o.dst))
			step.Outputs = append(step.Outputs, c.CellName(row, col))
		}
		steps = append(steps, step)
	}
	return steps
}

// EncodeTrace returns the solve-step sequence of the given encoding
// method. For the paper's exemplary configuration (n=8, r=4, m=2,
// e=(1,1,2)), EncodeTrace(MethodDownstairs) reproduces Table 3.
// MethodStandard has no step structure and returns nil.
func (c *Code) EncodeTrace(m Method) ([]TraceStep, error) {
	sch, err := c.scheduleFor(m)
	if err != nil {
		return nil, err
	}
	return c.traceOf(sch), nil
}

// UpstairsDecodeTrace returns the strict §4.2 upstairs decoding step
// sequence for a failure pattern. For the exemplary configuration with
// the worst-case stair erasure it reproduces Table 2. The schedule is
// built with the Outside-placement symbol names when the code uses
// Outside placement.
func (c *Code) UpstairsDecodeTrace(lost []Cell) ([]TraceStep, error) {
	idxs, err := c.checkLost(lost)
	if err != nil {
		return nil, err
	}
	lostSet := make(map[int]bool, len(idxs))
	for _, i := range idxs {
		lostSet[i] = true
	}
	p := newPeeler(c)
	for col := 0; col < c.n; col++ {
		for row := 0; row < c.r; row++ {
			if idx := c.cellIdx(row, col); !lostSet[idx] {
				p.known[idx] = true
			}
		}
	}
	for l := 0; l < c.mPrime; l++ {
		for h := 0; h < c.e[l]; h++ {
			p.markKnown(c.r+h, c.n+l, c.placement == Inside)
		}
	}
	if err := p.upstairs(idxs); err != nil {
		return nil, err
	}
	if !p.allKnown(idxs) {
		return nil, ErrUnrecoverable
	}
	p.sched.prune(idxs, c.rows*c.cols)
	return c.traceOf(p.sched), nil
}
