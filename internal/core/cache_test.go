package core

import (
	"testing"
)

// TestDecodeCacheEviction: the per-pattern schedule cache must stay
// bounded under pattern churn.
func TestDecodeCacheEviction(t *testing.T) {
	c := exemplary(t, Inside)
	// Generate more distinct single-sector patterns than the cache cap
	// by also varying two-sector patterns.
	count := 0
	for col := 0; col < c.N() && count < maxDecodeCacheEntries+50; col++ {
		for row := 0; row < c.R() && count < maxDecodeCacheEntries+50; row++ {
			for col2 := col; col2 < c.N() && count < maxDecodeCacheEntries+50; col2++ {
				lost := []Cell{{Col: col, Row: row}, {Col: col2, Row: (row + 1) % c.R()}}
				if _, err := c.CanRecover(lost); err != nil {
					t.Fatal(err)
				}
				count++
			}
		}
	}
	c.decodeMu.Lock()
	size := len(c.decodeCache)
	c.decodeMu.Unlock()
	if size > maxDecodeCacheEntries {
		t.Errorf("cache grew to %d entries (cap %d)", size, maxDecodeCacheEntries)
	}
}

// TestUnrecoverableCached: unrecoverable verdicts are cached as nil and
// repeat queries stay consistent.
func TestUnrecoverableCached(t *testing.T) {
	c := exemplary(t, Inside)
	var lost []Cell
	for col := 0; col < 3; col++ {
		for row := 0; row < c.R(); row++ {
			lost = append(lost, Cell{Col: col, Row: row})
		}
	}
	for i := 0; i < 3; i++ {
		ok, err := c.CanRecover(lost)
		if err != nil {
			t.Fatal(err)
		}
		if ok {
			t.Fatal("3 chunks recoverable with m=2")
		}
	}
}
