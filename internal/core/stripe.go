package core

import "fmt"

// Stripe holds the sector payloads of one stripe: N chunks of R sectors,
// each SectorSize bytes. With Outside placement it additionally carries
// the s global parity sectors in Globals, ordered (l = 0..m'-1, h =
// 0..e_l-1).
//
// Cells are stored chunk-major: sector (col, row) is Cells[col*R+row].
type Stripe struct {
	N, R       int
	SectorSize int
	Cells      [][]byte
	Globals    [][]byte
}

// NewStripe allocates a zeroed stripe matching the code's geometry.
// sectorSize must be positive and a multiple of the field's symbol width
// (2 bytes for GF(2^16), 1 otherwise).
func (c *Code) NewStripe(sectorSize int) (*Stripe, error) {
	if sectorSize <= 0 || sectorSize%c.f.SymbolBytes() != 0 {
		return nil, fmt.Errorf("core: sector size %d must be a positive multiple of %d", sectorSize, c.f.SymbolBytes())
	}
	return c.StripeOver(make([]byte, c.SlabSize(sectorSize)), sectorSize)
}

// SlabSize returns the byte length of the contiguous slab backing one
// stripe's cells: n·r sectors, chunk-major.
func (c *Code) SlabSize(sectorSize int) int { return c.n * c.r * sectorSize }

// StripeOver builds a stripe view over a caller-owned slab of exactly
// SlabSize(sectorSize) bytes, chunk-major: cell (col, row) occupies
// backing[(col·R+row)·sectorSize : ...]. Cells are sliced without a
// capacity cap, so consumers can detect that the R rows of one chunk
// tile a contiguous region of the slab and elide scratch copies (the
// store's flat-span device fast paths). The caller keeps ownership of
// backing: a pooled slab must stay alive — and unreleased — for the
// stripe's whole lifetime.
func (c *Code) StripeOver(backing []byte, sectorSize int) (*Stripe, error) {
	if sectorSize <= 0 || sectorSize%c.f.SymbolBytes() != 0 {
		return nil, fmt.Errorf("core: sector size %d must be a positive multiple of %d", sectorSize, c.f.SymbolBytes())
	}
	if len(backing) != c.SlabSize(sectorSize) {
		return nil, fmt.Errorf("core: slab is %d bytes, want %d", len(backing), c.SlabSize(sectorSize))
	}
	st := &Stripe{N: c.n, R: c.r, SectorSize: sectorSize}
	st.Cells = make([][]byte, c.n*c.r)
	for i := range st.Cells {
		st.Cells[i] = backing[i*sectorSize : (i+1)*sectorSize]
	}
	if c.placement == Outside {
		gBacking := make([]byte, c.s*sectorSize)
		st.Globals = make([][]byte, c.s)
		for i := range st.Globals {
			st.Globals[i] = gBacking[i*sectorSize : (i+1)*sectorSize]
		}
	}
	return st, nil
}

// Sector returns the payload of cell (col, row).
func (st *Stripe) Sector(col, row int) []byte { return st.Cells[col*st.R+row] }

// Clone returns a deep copy of the stripe.
func (st *Stripe) Clone() *Stripe {
	c := &Stripe{N: st.N, R: st.R, SectorSize: st.SectorSize}
	c.Cells = make([][]byte, len(st.Cells))
	for i, s := range st.Cells {
		c.Cells[i] = append([]byte{}, s...)
	}
	if st.Globals != nil {
		c.Globals = make([][]byte, len(st.Globals))
		for i, s := range st.Globals {
			c.Globals[i] = append([]byte{}, s...)
		}
	}
	return c
}

// validateStripe checks a caller-supplied stripe against the code.
func (c *Code) validateStripe(st *Stripe) error {
	if st == nil {
		return fmt.Errorf("core: nil stripe")
	}
	if st.N != c.n || st.R != c.r {
		return fmt.Errorf("core: stripe geometry %dx%d does not match code %dx%d", st.N, st.R, c.n, c.r)
	}
	if len(st.Cells) != c.n*c.r {
		return fmt.Errorf("core: stripe has %d cells, want %d", len(st.Cells), c.n*c.r)
	}
	if st.SectorSize <= 0 || st.SectorSize%c.f.SymbolBytes() != 0 {
		return fmt.Errorf("core: sector size %d must be a positive multiple of %d", st.SectorSize, c.f.SymbolBytes())
	}
	for i, s := range st.Cells {
		if len(s) != st.SectorSize {
			return fmt.Errorf("core: cell %d has %d bytes, want %d", i, len(s), st.SectorSize)
		}
	}
	if c.placement == Outside {
		if len(st.Globals) != c.s {
			return fmt.Errorf("core: stripe has %d global sectors, want %d", len(st.Globals), c.s)
		}
		for i, s := range st.Globals {
			if len(s) != st.SectorSize {
				return fmt.Errorf("core: global sector %d has %d bytes, want %d", i, len(s), st.SectorSize)
			}
		}
	} else if len(st.Globals) != 0 {
		return fmt.Errorf("core: inside placement stores globals in the stripe; Globals must be empty")
	}
	return nil
}

// globalOrd returns the position of global (l, h) within Stripe.Globals.
func (c *Code) globalOrd(l, h int) int {
	ord := 0
	for i := 0; i < l; i++ {
		ord += c.e[i]
	}
	return ord + h
}
