package core

import (
	"fmt"
	"runtime"
	"sync"
)

// Schedules are linear over sector contents byte-for-byte, so a stripe
// can be encoded or repaired by running the same plan independently
// over disjoint sub-ranges of every sector — the multi-core
// parallelisation the paper points at in §6.2.1. Ranges are aligned to
// the plan tile size on the fused path (so each worker sweeps whole
// tiles) and to the field's symbol width on the legacy path; each worker
// sees an environment whose cell regions are sliced to its range, so
// workers never touch the same bytes.

// sliceCells returns a view of the environment restricted to [lo, hi).
func sliceCells(cells [][]byte, lo, hi int) [][]byte {
	out := make([][]byte, len(cells))
	for i, s := range cells {
		if s != nil {
			out[i] = s[lo:hi:hi]
		}
	}
	return out
}

// splitRanges partitions [0, size) into at most workers symbol-aligned
// ranges of similar length.
func splitRanges(size, align, workers int) [][2]int {
	if workers < 1 {
		workers = 1
	}
	symbols := size / align
	if symbols < workers {
		workers = symbols
	}
	if workers <= 1 {
		return [][2]int{{0, size}}
	}
	var out [][2]int
	per := symbols / workers
	extra := symbols % workers
	off := 0
	for w := 0; w < workers; w++ {
		n := per
		if w < extra {
			n++
		}
		lo := off * align
		hi := (off + n) * align
		out = append(out, [2]int{lo, hi})
		off += n
	}
	return out
}

// runParallel executes a plan across workers over the environment. Fused
// plans split on tile boundaries so every worker sweeps whole tiles and
// the per-tile cache-residency reasoning still holds; the legacy path
// keeps the old symbol-aligned split. When the sector is too small to
// give every worker a tile, the split degrades gracefully toward fewer
// workers (splitRanges caps workers at the unit count).
func (c *Code) runParallel(p *plan, cells [][]byte, sectorSize, workers int) {
	align := c.f.SymbolBytes()
	if !p.legacy && sectorSize >= 2*c.planTile {
		align = c.planTile
	}
	ranges := splitRanges(sectorSize, align, workers)
	if len(ranges) == 1 {
		c.runPlan(p, cells)
		return
	}
	var wg sync.WaitGroup
	for _, rg := range ranges {
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			c.runPlan(p, sliceCells(cells, lo, hi))
		}(rg[0], rg[1])
	}
	wg.Wait()
}

// EncodeParallel encodes like Encode but splits the sector payloads
// across the given number of workers (0 selects GOMAXPROCS). All methods
// and both placements are supported; output is byte-identical to the
// serial path.
func (c *Code) EncodeParallel(st *Stripe, m Method, workers int) error {
	if err := c.validateStripe(st); err != nil {
		return err
	}
	p, err := c.planFor(m)
	if err != nil {
		return err
	}
	if workers == 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers < 1 {
		return fmt.Errorf("core: workers=%d must be ≥ 0", workers)
	}
	cells, release := c.env(st)
	defer release()
	c.runParallel(p, cells, st.SectorSize, workers)
	return nil
}

// RepairParallel repairs like Repair but splits the work across workers
// (0 selects GOMAXPROCS).
func (c *Code) RepairParallel(st *Stripe, lost []Cell, workers int) error {
	if err := c.validateStripe(st); err != nil {
		return err
	}
	idxs, err := c.checkLost(lost)
	if err != nil {
		return err
	}
	if len(idxs) == 0 {
		return nil
	}
	pl, err := c.decodePlan(idxs)
	if err != nil {
		return err
	}
	if pl == nil {
		return fmt.Errorf("%w: %d lost cells", ErrUnrecoverable, len(idxs))
	}
	if workers == 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers < 1 {
		return fmt.Errorf("core: workers=%d must be ≥ 0", workers)
	}
	cells, release := c.env(st)
	defer release()
	c.runParallel(pl, cells, st.SectorSize, workers)
	return nil
}
