// Package core implements STAIR codes (Li & Lee, FAST 2014): a general
// family of erasure codes that tolerate m whole-device failures plus a
// configurable pattern of sector failures, described by a vector
// e = (e0 ≤ e1 ≤ … ≤ e_{m'-1}), within a single stripe of n chunks of r
// sectors each.
//
// The implementation follows the paper's construction exactly:
//
//   - two systematic MDS codes, Crow = (n+m', n−m) over stripe rows and
//     Ccol = (r+e_max, r) over chunks (§3);
//   - the canonical stripe with virtual parity symbols, whose augmented
//     rows are Crow codewords (the homomorphic property, §4.1/App. A);
//   - upstairs decoding (§4.2), generalised here as a peeling scheduler
//     that also yields the practical decoding order of §4.3;
//   - upstairs and downstairs encoding with inside global parity symbols
//     (§5.1), plus standard encoding, with Mult_XOR cost models (§5.3)
//     and automatic selection of the cheapest method;
//   - uneven parity relations (§5.2) for update-penalty analysis (§6.3).
//
// All heavy work is pre-compiled at construction time into schedules of
// region Mult_XOR operations; Encode and Repair then replay schedules
// over sector payloads.
package core

import (
	"fmt"
	"sort"

	"stair/internal/gf"
	"stair/internal/rs"
)

// Placement selects where the s global parity symbols live.
type Placement int

const (
	// Inside stores global parity symbols inside the stripe, replacing
	// the bottom data sectors of the m' rightmost data chunks in the
	// stair layout of §5.1 (the paper's recommended, regular layout).
	Inside Placement = iota
	// Outside keeps the s global parity symbols outside the stripe
	// (the baseline construction of §3); they are assumed always
	// available during decoding.
	Outside
)

func (p Placement) String() string {
	switch p {
	case Inside:
		return "inside"
	case Outside:
		return "outside"
	default:
		return fmt.Sprintf("Placement(%d)", int(p))
	}
}

// Config describes a STAIR code instance. N, R, M and E correspond to the
// paper's n, r, m and e (Table 1).
type Config struct {
	// N is the number of chunks per stripe (devices per array). Must
	// satisfy N > M.
	N int
	// R is the number of sectors (symbols) per chunk.
	R int
	// M is the maximum number of entirely failed chunks tolerated.
	M int
	// E is the sector-failure coverage vector: sector failures may
	// appear in at most len(E) chunks beyond the M failed ones, and the
	// i-th most-affected such chunk may lose at most E[i] sectors (after
	// ascending sort). Each element must lie in [1, R]; len(E) ≤ N−M.
	// E may be empty, in which case the code degenerates to a
	// Reed-Solomon code with M parity chunks.
	E []int
	// W selects the Galois field GF(2^W). Zero picks the smallest
	// supported field that fits the geometry (w=8 when N+m' ≤ 256 and
	// R+e_max ≤ 256, else w=16).
	W int
	// Placement selects inside (default) or outside global parities.
	Placement Placement
	// Kind selects the MDS building block for Crow and Ccol. The
	// default (Cauchy) matches the paper.
	Kind rs.Kind
}

// normalized returns a validated copy of the config with E sorted
// ascending and W resolved, together with the derived parameters.
func (cfg Config) normalized() (Config, error) {
	c := cfg
	if c.N < 1 {
		return c, fmt.Errorf("core: N=%d must be ≥ 1", c.N)
	}
	if c.R < 1 {
		return c, fmt.Errorf("core: R=%d must be ≥ 1", c.R)
	}
	if c.M < 0 {
		return c, fmt.Errorf("core: M=%d must be ≥ 0", c.M)
	}
	if c.M >= c.N {
		return c, fmt.Errorf("core: M=%d must be < N=%d", c.M, c.N)
	}
	e := append([]int{}, c.E...)
	sort.Ints(e)
	c.E = e
	mPrime := len(e)
	if mPrime > c.N-c.M {
		return c, fmt.Errorf("core: len(E)=%d must be ≤ N−M=%d", mPrime, c.N-c.M)
	}
	for _, v := range e {
		if v < 1 || v > c.R {
			return c, fmt.Errorf("core: every element of E must lie in [1, R=%d]; got %d", c.R, v)
		}
	}
	eMax := 0
	if mPrime > 0 {
		eMax = e[mPrime-1]
	}
	switch c.W {
	case 0:
		if c.N+mPrime <= 256 && c.R+eMax <= 256 {
			c.W = 8
		} else {
			c.W = 16
		}
	case 4, 8, 16:
		// validated below against geometry
	default:
		return c, fmt.Errorf("core: unsupported W=%d (want 0, 4, 8 or 16)", c.W)
	}
	if c.N+mPrime > 1<<c.W || c.R+eMax > 1<<c.W {
		return c, fmt.Errorf("core: geometry (N+m'=%d, R+e_max=%d) does not fit GF(2^%d)",
			c.N+mPrime, c.R+eMax, c.W)
	}
	switch c.Placement {
	case Inside, Outside:
	default:
		return c, fmt.Errorf("core: unknown placement %v", c.Placement)
	}
	if c.Placement == Inside {
		// The stair must fit in the data chunks; len(E) ≤ N−M already
		// guarantees one data chunk per partial chunk, and E[l] ≤ R
		// guarantees the column depth.
		if mPrime > 0 && c.N-c.M-mPrime < 0 {
			return c, fmt.Errorf("core: inside placement needs len(E)=%d ≤ N−M=%d", mPrime, c.N-c.M)
		}
	}
	return c, nil
}

// MPrime returns m' = len(E) for a validated config.
func (cfg Config) MPrime() int { return len(cfg.E) }

// S returns s = Σ E[i].
func (cfg Config) S() int {
	s := 0
	for _, v := range cfg.E {
		s += v
	}
	return s
}

// EMax returns the largest element of E, or 0 when E is empty.
func (cfg Config) EMax() int {
	if len(cfg.E) == 0 {
		return 0
	}
	m := cfg.E[0]
	for _, v := range cfg.E[1:] {
		if v > m {
			m = v
		}
	}
	return m
}

// String renders the configuration compactly, e.g.
// "STAIR(n=8,r=4,m=2,e=[1 1 2],w=8,inside)".
func (cfg Config) String() string {
	return fmt.Sprintf("STAIR(n=%d,r=%d,m=%d,e=%v,w=%d,%v)",
		cfg.N, cfg.R, cfg.M, cfg.E, cfg.W, cfg.Placement)
}

// field returns the shared field for the resolved word size.
func (cfg Config) field() *gf.Field { return gf.Get(cfg.W) }
