package core

import "fmt"

// Cell addresses one sector within the real stripe: chunk (device) column
// Col in [0, N) and sector row Row in [0, R).
type Cell struct {
	Col int
	Row int
}

func (c Cell) String() string { return fmt.Sprintf("(%d,%d)", c.Col, c.Row) }

// CellClass labels what a real stripe cell stores.
type CellClass int

const (
	// ClassData marks a cell holding user data.
	ClassData CellClass = iota
	// ClassRowParity marks a cell in one of the m row-parity chunks.
	ClassRowParity
	// ClassGlobalParity marks an inside global parity cell (a stair
	// cell); only present with Placement == Inside.
	ClassGlobalParity
)

func (c CellClass) String() string {
	switch c {
	case ClassData:
		return "data"
	case ClassRowParity:
		return "row-parity"
	case ClassGlobalParity:
		return "global-parity"
	default:
		return fmt.Sprintf("CellClass(%d)", int(c))
	}
}

// Canonical-grid geometry. The canonical stripe (§4.1) is a
// (R+e_max)×(N+m') grid of symbols:
//
//	cols 0..n-m-1      data chunks
//	cols n-m..n-1      row parity chunks
//	cols n..n+m'-1     intermediate parity chunks (never stored)
//	rows 0..r-1        real rows
//	rows r..r+emax-1   augmented rows (virtual parities, globals, dummies)
//
// Cells are addressed by the linear index row*(n+m')+col.

func (c *Code) cellIdx(row, col int) int { return row*c.cols + col }

func (c *Code) cellRC(idx int) (row, col int) { return idx / c.cols, idx % c.cols }

// isReal reports whether the canonical cell is part of the stored stripe.
func (c *Code) isReal(row, col int) bool { return row < c.r && col < c.n }

// stairOf returns (l, h) if (row, col) is an inside global parity cell
// ĝ_{h,l}, i.e. one of the bottom e_l cells of the l-th rightmost data
// chunk (paper Fig. 5); ok is false otherwise.
func (c *Code) stairOf(row, col int) (l, h int, ok bool) {
	if c.placement != Inside || c.mPrime == 0 {
		return 0, 0, false
	}
	base := c.n - c.m - c.mPrime
	if col < base || col >= c.n-c.m || row >= c.r {
		return 0, 0, false
	}
	l = col - base
	start := c.r - c.e[l]
	if row < start {
		return 0, 0, false
	}
	return l, row - start, true
}

// globalOf returns (l, h) if the canonical cell (row, col) is the corner
// global parity g_{h,l} (augmented row h of intermediate chunk l with
// h < e_l); ok is false for real cells, virtual parities and dummies.
func (c *Code) globalOf(row, col int) (l, h int, ok bool) {
	if row < c.r || col < c.n {
		return 0, 0, false
	}
	l = col - c.n
	h = row - c.r
	if h >= c.e[l] {
		return 0, 0, false // dummy
	}
	return l, h, true
}

// classOf classifies a real stripe cell.
func (c *Code) classOf(row, col int) CellClass {
	if col >= c.n-c.m {
		return ClassRowParity
	}
	if _, _, ok := c.stairOf(row, col); ok {
		return ClassGlobalParity
	}
	return ClassData
}

// CellName renders a canonical cell with the paper's notation: d_{i,j}
// data, p_{i,k} row parity, ĝ_{h,l} inside global, p'_{i,l} intermediate,
// d*_{h,j} / p*_{h,k} virtual parities, g_{h,l} outside global, "dummy"
// for dummy globals. Used by the tracer to reproduce Tables 2 and 3.
func (c *Code) CellName(row, col int) string {
	switch {
	case row < c.r && col < c.n-c.m:
		if l, h, ok := c.stairOf(row, col); ok {
			return fmt.Sprintf("ĝ%d,%d", h, l)
		}
		return fmt.Sprintf("d%d,%d", row, col)
	case row < c.r && col < c.n:
		return fmt.Sprintf("p%d,%d", row, col-(c.n-c.m))
	case row < c.r:
		return fmt.Sprintf("p'%d,%d", row, col-c.n)
	case col < c.n-c.m:
		return fmt.Sprintf("d*%d,%d", row-c.r, col)
	case col < c.n:
		return fmt.Sprintf("p*%d,%d", row-c.r, col-(c.n-c.m))
	default:
		if _, _, ok := c.globalOf(row, col); ok {
			return fmt.Sprintf("g%d,%d", row-c.r, col-c.n)
		}
		return "dummy"
	}
}
