package core

import (
	"fmt"
	"os"
	"strconv"

	"stair/internal/gf"
)

// A plan is the source-major, tiled execution form of a schedule — the
// ISA-L ec_encode_data shape. The op-list run() walks destination by
// destination, so every source region is streamed from memory once per
// parity row; a plan regroups the same Mult_XORs by *source* and executes
// one fused kernel call per source cell, updating all of its destinations
// while the source tile is register/cache-resident. The whole stripe is
// then swept tile-by-tile (an L1/L2-sized block of every cell at the same
// byte range) so sources and destinations both stay cache-hot across the
// plan — region ops are byte-wise linear, so running all stages over one
// byte range before advancing is identical to running each op full-width.
//
// Correct regrouping must respect producer→consumer order: an op may read
// cells written by earlier ops. Compilation levels the op DAG into
// stages — an op's stage is one past the deepest stage producing any of
// its sources (plan inputs are stage 0) — so within a stage no op reads
// another's destination and the fused calls of a stage can run in any
// order. Each destination's first term runs as an overwrite (init) call
// and the rest accumulate — equivalent to run()'s overwrite semantics
// without zero-filling or re-reading fresh output regions.
//
// Plans fall back to the op-list executor (plan.legacy) when the field
// has multi-byte symbols (w=16 has no byte-oriented split tables) or when
// STAIR_PLAN_MODE=legacy forces the PR 5 data path for A/B comparison.

// planMode selects the stripe data-path executor.
type planMode int

const (
	planFused  planMode = iota // source-major fused kernels, tiled
	planLegacy                 // op-by-op schedule walk (PR 5 path)
)

func (m planMode) String() string {
	if m == planLegacy {
		return "legacy"
	}
	return "fused"
}

// defaultPlanTile is the per-cell tile size the stripe sweep uses. One
// fused call touches 1 source + up-to-maxFan destination tiles, so the
// working set is (fanout+1)·tile bytes: 8 KiB keeps a typical 4-wide
// group inside a 48 KiB L1 and even the widest schedules inside L2.
const defaultPlanTile = 8192

// planConfigFromEnv resolves the data-path knobs: STAIR_PLAN_MODE
// (fused|legacy) and STAIR_PLAN_TILE (bytes per cell tile). Both are
// validated here so a typo is a constructor error, mirroring the
// STAIR_GF_KERNEL handling in internal/gf.
func planConfigFromEnv() (planMode, int, error) {
	mode := planFused
	switch v := os.Getenv("STAIR_PLAN_MODE"); v {
	case "", "fused":
	case "legacy":
		mode = planLegacy
	default:
		return 0, 0, fmt.Errorf("core: STAIR_PLAN_MODE=%q is not a plan mode (want fused or legacy)", v)
	}
	tile := defaultPlanTile
	if v := os.Getenv("STAIR_PLAN_TILE"); v != "" {
		t, err := strconv.Atoi(v)
		if err != nil || t < 64 || t%64 != 0 {
			return 0, 0, fmt.Errorf("core: STAIR_PLAN_TILE=%q must be a multiple of 64 bytes ≥ 64", v)
		}
		tile = t
	}
	return mode, tile, nil
}

// fusedGroup is one fused kernel call: every destination cell the plan
// accumulates coeff·src into within one stage, with the coefficient
// tables pre-resolved at compile time.
type fusedGroup struct {
	src  int32
	dsts []int32
	tabs []*gf.MulTable
}

type planStage struct {
	zero   []int32      // destinations with no surviving terms (rare)
	inits  []fusedGroup // overwrite calls: each destination's first term
	groups []fusedGroup // accumulate calls for the remaining terms
}

type plan struct {
	sch    *schedule // the schedule this plan executes (costs, legacy path)
	stages []planStage
	legacy bool // run op-by-op through Code.run instead
	maxFan int  // widest fused group, sizes the per-run dst scratch
	calls  int  // fused calls per full execution (observability)
}

// compilePlan lowers a schedule into its source-major plan.
func (c *Code) compilePlan(sch *schedule) *plan {
	p := &plan{sch: sch}
	if c.planMode == planLegacy || c.f.SymbolBytes() != 1 {
		p.legacy = true
		return p
	}
	// Stage leveling: plan inputs sit at stage 0, an op lands one past
	// the deepest producer it reads. Schedules are in execution order and
	// write each cell exactly once, so one forward pass suffices.
	stageOf := make([]int32, c.rows*c.cols)
	maxStage := int32(0)
	opStage := make([]int32, len(sch.ops))
	for i := range sch.ops {
		o := &sch.ops[i]
		s := int32(1)
		for _, t := range o.terms {
			if ps := stageOf[t.src] + 1; ps > s {
				s = ps
			}
		}
		opStage[i] = s
		stageOf[o.dst] = s
		if s > maxStage {
			maxStage = s
		}
	}
	p.stages = make([]planStage, maxStage)
	// groupIx maps a stage's source cell to its group index in that stage.
	groupIx := make([]map[int32]int, maxStage)
	for i := range groupIx {
		groupIx[i] = make(map[int32]int)
	}
	for i := range sch.ops {
		o := &sch.ops[i]
		st := &p.stages[opStage[i]-1]
		st.zero = append(st.zero, o.dst)
		for _, t := range o.terms {
			coeff := t.coeff & uint32(c.f.Size()-1)
			if coeff == 0 {
				continue
			}
			ix, ok := groupIx[opStage[i]-1][t.src]
			if !ok {
				ix = len(st.groups)
				groupIx[opStage[i]-1][t.src] = ix
				st.groups = append(st.groups, fusedGroup{src: t.src})
			}
			g := &st.groups[ix]
			// Merge duplicate (src,dst) terms: c1·v ^ c2·v = (c1^c2)·v.
			// The fused kernels forbid overlapping destinations, and a
			// merged term is cheaper anyway.
			merged := false
			for di, d := range g.dsts {
				if d == o.dst {
					// Recover the existing coefficient via the table row
					// of 1 (Row[1] = c) and re-resolve.
					prev := uint32(g.tabs[di].Row[1])
					g.tabs[di] = c.f.Table(prev ^ coeff)
					merged = true
					break
				}
			}
			if !merged {
				g.dsts = append(g.dsts, o.dst)
				g.tabs = append(g.tabs, c.f.Table(coeff))
			}
		}
	}
	// Drop terms merged down to coefficient zero, then split each
	// destination's first surviving term into an overwrite (init) group:
	// outputs are written by their first term instead of zero-filled and
	// accumulated, saving one write plus one read of every destination
	// region per execution. st.zero keeps only destinations every term of
	// which merged away — those still need the explicit clear.
	for si := range p.stages {
		st := &p.stages[si]
		claimed := make(map[int32]bool, len(st.zero))
		kept := st.groups[:0]
		for _, g := range st.groups {
			var initDsts []int32
			var initTabs []*gf.MulTable
			dsts, tabs := g.dsts[:0], g.tabs[:0]
			for i := range g.dsts {
				if g.tabs[i].Row[1] == 0 {
					continue
				}
				if !claimed[g.dsts[i]] {
					claimed[g.dsts[i]] = true
					initDsts = append(initDsts, g.dsts[i])
					initTabs = append(initTabs, g.tabs[i])
				} else {
					dsts = append(dsts, g.dsts[i])
					tabs = append(tabs, g.tabs[i])
				}
			}
			if len(initDsts) > 0 {
				st.inits = append(st.inits, fusedGroup{src: g.src, dsts: initDsts, tabs: initTabs})
				if len(initDsts) > p.maxFan {
					p.maxFan = len(initDsts)
				}
				p.calls++
			}
			g.dsts, g.tabs = dsts, tabs
			if len(g.dsts) == 0 {
				continue
			}
			if len(g.dsts) > p.maxFan {
				p.maxFan = len(g.dsts)
			}
			p.calls++
			kept = append(kept, g)
		}
		st.groups = kept
		zero := st.zero[:0]
		for _, d := range st.zero {
			if !claimed[d] {
				zero = append(zero, d)
			}
		}
		st.zero = zero
	}
	return p
}

// runPlan executes a plan over the environment, sweeping all stages over
// one tile of every cell before advancing to the next tile.
func (c *Code) runPlan(p *plan, cells [][]byte) {
	if p.legacy {
		c.run(p.sch, cells)
		return
	}
	size := 0
	for _, s := range cells {
		if s != nil {
			size = len(s)
			break
		}
	}
	var dstbuf [][]byte
	if v := c.fanPool.Get(); v != nil {
		if b := *(v.(*[][]byte)); cap(b) >= p.maxFan {
			dstbuf = b[:p.maxFan]
		}
	}
	if dstbuf == nil {
		dstbuf = make([][]byte, p.maxFan)
	}
	defer func() {
		clear(dstbuf)
		c.fanPool.Put(&dstbuf)
	}()
	for lo := 0; lo < size; lo += c.planTile {
		hi := lo + c.planTile
		if hi > size {
			hi = size
		}
		for si := range p.stages {
			st := &p.stages[si]
			for _, d := range st.zero {
				gf.Zero(cells[d][lo:hi])
			}
			for gi := range st.inits {
				g := &st.inits[gi]
				dsts := dstbuf[:len(g.dsts)]
				for i, d := range g.dsts {
					dsts[i] = cells[d][lo:hi]
				}
				gf.MulRegionFused(dsts, cells[g.src][lo:hi], g.tabs)
			}
			for gi := range st.groups {
				g := &st.groups[gi]
				dsts := dstbuf[:len(g.dsts)]
				for i, d := range g.dsts {
					dsts[i] = cells[d][lo:hi]
				}
				gf.MultXORFused(dsts, cells[g.src][lo:hi], g.tabs)
			}
		}
	}
}

// planFor resolves a method to its compiled plan.
func (c *Code) planFor(m Method) (*plan, error) {
	switch m {
	case MethodAuto:
		return c.planFor(c.method)
	case MethodUpstairs:
		return c.upPlan, nil
	case MethodDownstairs:
		return c.downPlan, nil
	case MethodStandard:
		return c.stdPlan, nil
	default:
		return nil, fmt.Errorf("core: unknown method %v", m)
	}
}

// PlanInfo describes the active stripe data path for observability
// surfaces (stairstore stats, the stairbench banner, staird metrics).
// Stages, FusedCalls and MaxFanout describe the auto-method encode plan.
type PlanInfo struct {
	Mode       string `json:"mode"` // "fused" or "legacy"
	Kernel     string `json:"kernel"`
	TileBytes  int    `json:"tile_bytes"`
	Stages     int    `json:"stages"`
	FusedCalls int    `json:"fused_calls"`
	MaxFanout  int    `json:"max_fanout"`
}

// PlanDefaults reports the data-path configuration codes built in this
// process will use — mode, tile size and the dispatched kernel — without
// needing a compiled Code. Banner/startup surfaces use it; per-code shape
// (stages, fan-out) comes from Code.PlanInfo. The error mirrors New's
// validation of STAIR_PLAN_MODE/STAIR_PLAN_TILE.
func PlanDefaults() (PlanInfo, error) {
	mode, tile, err := planConfigFromEnv()
	if err != nil {
		return PlanInfo{}, err
	}
	return PlanInfo{
		Mode:      mode.String(),
		Kernel:    gf.ActiveKernelName(),
		TileBytes: tile,
	}, nil
}

// PlanInfo reports the shape of the encode data path: which executor
// stripes run through (fused source-major vs the legacy op walk), the
// tile size, the dispatched GF kernel, and the compiled shape of the
// auto-method encode plan.
func (c *Code) PlanInfo() PlanInfo {
	p, _ := c.planFor(MethodAuto)
	info := PlanInfo{
		Mode:      planFused.String(),
		Kernel:    c.KernelName(),
		TileBytes: c.planTile,
	}
	if p.legacy {
		info.Mode = planLegacy.String()
		return info
	}
	info.Stages = len(p.stages)
	info.FusedCalls = p.calls
	info.MaxFanout = p.maxFan
	return info
}
