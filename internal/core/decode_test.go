package core

import (
	"errors"
	"math/rand"
	"sort"
	"testing"
)

// corrupt zeroes the payloads of the lost cells so a repair that merely
// leaves data in place cannot pass.
func corrupt(st *Stripe, lost []Cell) {
	for _, cell := range lost {
		s := st.Sector(cell.Col, cell.Row)
		for i := range s {
			s[i] = 0xAA
		}
	}
}

// encodeAndBreak returns an encoded stripe, a pristine copy, and applies
// the corruption.
func encodeAndBreak(t *testing.T, c *Code, lost []Cell, seed int64) (*Stripe, *Stripe) {
	t.Helper()
	st, err := c.NewStripe(16 * c.Field().SymbolBytes())
	if err != nil {
		t.Fatal(err)
	}
	fillData(t, c, st, seed)
	if err := c.Encode(st); err != nil {
		t.Fatal(err)
	}
	want := st.Clone()
	corrupt(st, lost)
	return st, want
}

func repairAndCheck(t *testing.T, c *Code, lost []Cell, seed int64) {
	t.Helper()
	st, want := encodeAndBreak(t, c, lost, seed)
	if err := c.Repair(st, lost); err != nil {
		t.Fatalf("Repair(%v): %v", lost, err)
	}
	if !stripesEqual(st, want) {
		t.Fatalf("Repair(%v): stripe content wrong after repair", lost)
	}
}

// worstCaseLost builds the §6.2.2 worst-case pattern: the m leftmost
// chunks entirely lost, plus e-defined sector losses at the bottoms of
// the next m' chunks.
func worstCaseLost(c *Code) []Cell {
	var lost []Cell
	for col := 0; col < c.m; col++ {
		for row := 0; row < c.r; row++ {
			lost = append(lost, Cell{Col: col, Row: row})
		}
	}
	for l, el := range c.E() {
		col := c.m + l
		for h := 0; h < el; h++ {
			lost = append(lost, Cell{Col: col, Row: c.r - 1 - h})
		}
	}
	return lost
}

func TestRepairWorstCase(t *testing.T) {
	for _, cfg := range []Config{
		{N: 8, R: 4, M: 2, E: []int{1, 1, 2}},
		{N: 8, R: 4, M: 2, E: []int{1, 1, 2}, Placement: Outside},
		{N: 6, R: 4, M: 1, E: []int{4}},
		{N: 5, R: 4, M: 0, E: []int{1, 2}},
		{N: 6, R: 6, M: 2, E: []int{2, 2, 2, 2}},
		{N: 9, R: 5, M: 3, E: []int{1}},
		{N: 16, R: 16, M: 2, E: []int{1, 3}},
		{N: 8, R: 4, M: 2, E: []int{1, 2}, W: 16},
	} {
		t.Run(cfg.String(), func(t *testing.T) {
			c, err := New(cfg)
			if err != nil {
				t.Fatal(err)
			}
			repairAndCheck(t, c, worstCaseLost(c), 17)
		})
	}
}

// TestRepairDeviceFailuresOnly: pure device failures decode like
// Reed-Solomon (§6.2.2), for every choice of m failed chunks.
func TestRepairDeviceFailuresOnly(t *testing.T) {
	c := exemplary(t, Inside)
	for a := 0; a < c.N(); a++ {
		for b := a + 1; b < c.N(); b++ {
			var lost []Cell
			for row := 0; row < c.R(); row++ {
				lost = append(lost, Cell{Col: a, Row: row}, Cell{Col: b, Row: row})
			}
			repairAndCheck(t, c, lost, int64(a*10+b))
		}
	}
}

// TestRepairSingleSector: one lost sector is repaired locally via its
// row, costing exactly n−m Mult_XORs (§4.3 local recovery).
func TestRepairSingleSector(t *testing.T) {
	c := exemplary(t, Inside)
	for col := 0; col < c.N(); col++ {
		for row := 0; row < c.R(); row++ {
			lost := []Cell{{Col: col, Row: row}}
			repairAndCheck(t, c, lost, int64(col*7+row))
			cost, err := c.RepairCost(lost)
			if err != nil {
				t.Fatal(err)
			}
			if cost > c.N()-c.M() {
				t.Errorf("single sector %v repair cost %d, want ≤ n−m=%d", lost[0], cost, c.N()-c.M())
			}
		}
	}
}

// TestRepairAllCoveragePatterns enumerates, for the exemplary config,
// every assignment of m failed chunks and m' partial chunks with the
// maximal per-chunk loss counts in random row positions.
func TestRepairAllCoveragePatterns(t *testing.T) {
	c := exemplary(t, Inside)
	rng := rand.New(rand.NewSource(23))
	n, r := c.N(), c.R()
	e := c.E()
	count := 0
	for a := 0; a < n; a++ {
		for b := a + 1; b < n; b++ {
			// Choose m'=3 partial chunks from the rest, a few random
			// draws per (a, b) pair to bound runtime.
			rest := make([]int, 0, n-2)
			for col := 0; col < n; col++ {
				if col != a && col != b {
					rest = append(rest, col)
				}
			}
			for trial := 0; trial < 3; trial++ {
				perm := rng.Perm(len(rest))[:len(e)]
				var lost []Cell
				for row := 0; row < r; row++ {
					lost = append(lost, Cell{Col: a, Row: row}, Cell{Col: b, Row: row})
				}
				for i, pi := range perm {
					rows := rng.Perm(r)[:e[i]]
					for _, row := range rows {
						lost = append(lost, Cell{Col: rest[pi], Row: row})
					}
				}
				ok, err := c.CoverageContains(lost)
				if err != nil {
					t.Fatal(err)
				}
				if !ok {
					t.Fatalf("pattern should be within coverage: %v", lost)
				}
				repairAndCheck(t, c, lost, int64(count))
				count++
			}
		}
	}
}

// TestRepairBeyondCoverage: patterns that exceed the coverage must be
// rejected with ErrUnrecoverable, not silently mis-repaired.
func TestRepairBeyondCoverage(t *testing.T) {
	c := exemplary(t, Inside)
	n, r := c.N(), c.R()

	t.Run("m+1 full chunks", func(t *testing.T) {
		var lost []Cell
		for col := 0; col < c.M()+1; col++ {
			for row := 0; row < r; row++ {
				lost = append(lost, Cell{Col: col, Row: row})
			}
		}
		st, _ := encodeAndBreak(t, c, lost, 5)
		err := c.Repair(st, lost)
		if !errors.Is(err, ErrUnrecoverable) {
			t.Errorf("Repair = %v, want ErrUnrecoverable", err)
		}
		if ok, _ := c.CoverageContains(lost); ok {
			t.Error("CoverageContains claims m+1 chunks covered")
		}
	})

	t.Run("too many sector failures in one chunk", func(t *testing.T) {
		// m full chunks + e_max+1 sectors in another chunk, all in a
		// row pattern that defeats local repair: spread them over the
		// bottom rows where the other partial chunks also lose data.
		var lost []Cell
		for col := 0; col < c.M(); col++ {
			for row := 0; row < r; row++ {
				lost = append(lost, Cell{Col: col, Row: row})
			}
		}
		for h := 0; h < 3; h++ { // e_max = 2, so 3 in one chunk
			lost = append(lost, Cell{Col: 4, Row: r - 1 - h})
		}
		lost = append(lost, Cell{Col: 5, Row: r - 1}, Cell{Col: 6, Row: r - 1})
		if ok, _ := c.CoverageContains(lost); ok {
			t.Error("CoverageContains claims pattern covered")
		}
		ok, err := c.CanRecover(lost)
		if err != nil {
			t.Fatal(err)
		}
		if ok {
			t.Error("pattern beyond coverage recovered unexpectedly")
		}
	})

	t.Run("too many partial chunks", func(t *testing.T) {
		// m'=3 but bottom-row losses in 4 chunks beyond the m failed
		// ones cannot all be covered.
		var lost []Cell
		for col := 0; col < c.M(); col++ {
			for row := 0; row < r; row++ {
				lost = append(lost, Cell{Col: col, Row: row})
			}
		}
		for col := c.M(); col < c.M()+4; col++ {
			lost = append(lost, Cell{Col: col, Row: r - 1})
		}
		if ok, _ := c.CoverageContains(lost); ok {
			t.Error("CoverageContains claims 4 partial chunks covered")
		}
		ok, err := c.CanRecover(lost)
		if err != nil {
			t.Fatal(err)
		}
		if ok {
			t.Error("4 partial chunks recovered; coverage is m'=3")
		}
	})

	_ = n
}

// TestLuckyPatternBeyondCoverage: some patterns outside the formal
// coverage still peel (e.g. extra losses repairable row-locally). The
// decoder should recover them rather than give up.
func TestLuckyPatternBeyondCoverage(t *testing.T) {
	c := exemplary(t, Inside)
	// 4 chunks with one loss each, all in different rows: every row has
	// a single loss (≤ m), so local repair recovers everything even
	// though 4 partial chunks exceed m'=3... with m=2 full chunks NOT
	// failed.
	lost := []Cell{{Col: 0, Row: 0}, {Col: 1, Row: 1}, {Col: 2, Row: 2}, {Col: 3, Row: 3}, {Col: 4, Row: 0}, {Col: 5, Row: 1}}
	ok, err := c.CanRecover(lost)
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Fatal("row-local pattern not recovered")
	}
	repairAndCheck(t, c, lost, 31)
}

func TestRepairValidation(t *testing.T) {
	c := exemplary(t, Inside)
	st, _ := c.NewStripe(8)
	if err := c.Repair(st, []Cell{{Col: 99, Row: 0}}); err == nil {
		t.Error("out-of-range lost cell accepted")
	}
	if err := c.Repair(st, nil); err != nil {
		t.Errorf("empty lost set should be a no-op, got %v", err)
	}
	// Duplicate cells are tolerated.
	lost := []Cell{{Col: 0, Row: 0}, {Col: 0, Row: 0}}
	repairAndCheck(t, c, lost, 3)
}

func TestRepairStairCellLoss(t *testing.T) {
	// Losing inside global parity cells is a sector failure like any
	// other and must be repairable.
	c := exemplary(t, Inside)
	lost := []Cell{{Col: 3, Row: 3}, {Col: 5, Row: 2}, {Col: 5, Row: 3}} // ĝ0,0, ĝ0,2, ĝ1,2
	repairAndCheck(t, c, lost, 37)
}

func TestRepairCostWorstCaseReasonable(t *testing.T) {
	c := exemplary(t, Inside)
	cost, err := c.RepairCost(worstCaseLost(c))
	if err != nil {
		t.Fatal(err)
	}
	if cost <= 0 {
		t.Error("worst-case repair cost should be positive")
	}
	// Must not exceed the full upstairs decode model bound by much; use
	// the encode model cost as a sanity ceiling (decode recovers fewer
	// symbols than a full re-encode of everything plus virtuals).
	if cost > 2*c.Cost(MethodUpstairs) {
		t.Errorf("worst-case repair cost %d suspiciously high (encode model %d)", cost, c.Cost(MethodUpstairs))
	}
}

func TestDecodeCacheReuse(t *testing.T) {
	c := exemplary(t, Inside)
	lost := worstCaseLost(c)
	if _, err := c.RepairCost(lost); err != nil {
		t.Fatal(err)
	}
	c.decodeMu.Lock()
	entries := len(c.decodeCache)
	c.decodeMu.Unlock()
	if entries != 1 {
		t.Errorf("cache has %d entries, want 1", entries)
	}
	// Same pattern in different order must hit the same entry.
	shuffled := append([]Cell{}, lost...)
	sort.Slice(shuffled, func(i, j int) bool { return shuffled[i].Row < shuffled[j].Row })
	if _, err := c.RepairCost(shuffled); err != nil {
		t.Fatal(err)
	}
	c.decodeMu.Lock()
	entries = len(c.decodeCache)
	c.decodeMu.Unlock()
	if entries != 1 {
		t.Errorf("cache has %d entries after reordered query, want 1", entries)
	}
}

// TestSpecialCaseEEqualsR: e=(r) gives the same function as a systematic
// (n, n−m−1) code (§2): any m+1 chunk failures are recoverable.
func TestSpecialCaseEEqualsR(t *testing.T) {
	c, err := New(Config{N: 6, R: 4, M: 1, E: []int{4}})
	if err != nil {
		t.Fatal(err)
	}
	for a := 0; a < 6; a++ {
		for b := a + 1; b < 6; b++ {
			var lost []Cell
			for row := 0; row < 4; row++ {
				lost = append(lost, Cell{Col: a, Row: row}, Cell{Col: b, Row: row})
			}
			repairAndCheck(t, c, lost, int64(a*6+b))
		}
	}
}

// TestSpecialCaseSD1: e=(1) is a new construction of a PMDS/SD code with
// s=1 (§2): any m chunks plus any one additional sector.
func TestSpecialCaseSD1(t *testing.T) {
	c, err := New(Config{N: 6, R: 4, M: 2, E: []int{1}})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(41))
	for trial := 0; trial < 60; trial++ {
		perm := rng.Perm(6)
		a, b, extra := perm[0], perm[1], perm[2]
		var lost []Cell
		for row := 0; row < 4; row++ {
			lost = append(lost, Cell{Col: a, Row: row}, Cell{Col: b, Row: row})
		}
		lost = append(lost, Cell{Col: extra, Row: rng.Intn(4)})
		repairAndCheck(t, c, lost, int64(trial))
	}
}

// TestSpecialCaseIDR: e=(ϵ,…,ϵ) with m'=n−m acts like intra-device
// redundancy: every surviving chunk may lose up to ϵ sectors.
func TestSpecialCaseIDR(t *testing.T) {
	c, err := New(Config{N: 5, R: 4, M: 1, E: []int{2, 2, 2, 2}})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(43))
	for trial := 0; trial < 30; trial++ {
		failed := rng.Intn(5)
		var lost []Cell
		for row := 0; row < 4; row++ {
			lost = append(lost, Cell{Col: failed, Row: row})
		}
		for col := 0; col < 5; col++ {
			if col == failed {
				continue
			}
			for _, row := range rng.Perm(4)[:2] {
				lost = append(lost, Cell{Col: col, Row: row})
			}
		}
		repairAndCheck(t, c, lost, int64(trial+100))
	}
}

// TestCoverageContainsTable drives the coverage predicate directly.
func TestCoverageContainsTable(t *testing.T) {
	c := exemplary(t, Inside) // m=2, e=(1,1,2)
	fullChunk := func(col int) []Cell {
		var cs []Cell
		for row := 0; row < 4; row++ {
			cs = append(cs, Cell{Col: col, Row: row})
		}
		return cs
	}
	cases := []struct {
		name string
		lost []Cell
		want bool
	}{
		{"empty", nil, true},
		{"one sector", []Cell{{0, 0}}, true},
		{"two full chunks", append(fullChunk(0), fullChunk(1)...), true},
		{"three full chunks", append(append(fullChunk(0), fullChunk(1)...), fullChunk(2)...), false},
		{"2 chunks + (1,1,2) sectors", append(append(fullChunk(0), fullChunk(1)...),
			Cell{2, 0}, Cell{3, 1}, Cell{4, 2}, Cell{4, 3}), true},
		{"2 chunks + (2,2) sectors", append(append(fullChunk(0), fullChunk(1)...),
			Cell{2, 0}, Cell{2, 1}, Cell{3, 2}, Cell{3, 3}), false},
		{"(2,2) sectors no chunk failures", []Cell{{2, 0}, {2, 1}, {3, 2}, {3, 3}}, true},
		{"one chunk + 3 sectors in another", append(fullChunk(0),
			Cell{2, 0}, Cell{2, 1}, Cell{2, 2}), true},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			got, err := c.CoverageContains(tc.lost)
			if err != nil {
				t.Fatal(err)
			}
			if got != tc.want {
				t.Errorf("CoverageContains = %v, want %v", got, tc.want)
			}
		})
	}
}

// TestAllCoveredPatternsRecoverable cross-checks CoverageContains against
// CanRecover on random patterns: covered ⇒ recoverable (the paper's
// fault-tolerance theorem).
func TestAllCoveredPatternsRecoverable(t *testing.T) {
	cfgs := []Config{
		{N: 8, R: 4, M: 2, E: []int{1, 1, 2}},
		{N: 6, R: 5, M: 1, E: []int{2, 3}},
		{N: 5, R: 3, M: 0, E: []int{1, 1}},
		{N: 7, R: 4, M: 2, E: []int{1, 1, 2}, Placement: Outside},
	}
	rng := rand.New(rand.NewSource(47))
	for _, cfg := range cfgs {
		c, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		for trial := 0; trial < 150; trial++ {
			nLost := rng.Intn(c.N() * c.R() / 2)
			seen := map[Cell]bool{}
			var lost []Cell
			for len(lost) < nLost {
				cell := Cell{Col: rng.Intn(c.N()), Row: rng.Intn(c.R())}
				if !seen[cell] {
					seen[cell] = true
					lost = append(lost, cell)
				}
			}
			covered, err := c.CoverageContains(lost)
			if err != nil {
				t.Fatal(err)
			}
			if !covered {
				continue
			}
			ok, err := c.CanRecover(lost)
			if err != nil {
				t.Fatal(err)
			}
			if !ok {
				t.Fatalf("cfg %v: covered pattern not recoverable: %v", cfg, lost)
			}
			repairAndCheck(t, c, lost, int64(trial))
		}
	}
}
