package core

import (
	"testing"
)

func TestEncodeParallelMatchesSerial(t *testing.T) {
	for _, cfg := range []Config{
		{N: 8, R: 4, M: 2, E: []int{1, 1, 2}},
		{N: 8, R: 4, M: 2, E: []int{1, 1, 2}, Placement: Outside},
		{N: 6, R: 8, M: 1, E: []int{1, 3}, W: 16},
	} {
		c, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		sectorSize := 64 * c.Field().SymbolBytes()
		serial, _ := c.NewStripe(sectorSize)
		fillData(t, c, serial, 77)
		if err := c.Encode(serial); err != nil {
			t.Fatal(err)
		}
		for _, workers := range []int{0, 1, 2, 3, 7} {
			par, _ := c.NewStripe(sectorSize)
			fillData(t, c, par, 77)
			if err := c.EncodeParallel(par, MethodAuto, workers); err != nil {
				t.Fatalf("workers=%d: %v", workers, err)
			}
			if !stripesEqual(serial, par) {
				t.Fatalf("cfg %v workers=%d: parallel encode differs from serial", cfg, workers)
			}
		}
	}
}

func TestEncodeParallelAllMethods(t *testing.T) {
	c := exemplary(t, Inside)
	want, _ := c.NewStripe(48)
	fillData(t, c, want, 5)
	if err := c.Encode(want); err != nil {
		t.Fatal(err)
	}
	for _, m := range []Method{MethodUpstairs, MethodDownstairs, MethodStandard} {
		st, _ := c.NewStripe(48)
		fillData(t, c, st, 5)
		if err := c.EncodeParallel(st, m, 4); err != nil {
			t.Fatal(err)
		}
		if !stripesEqual(st, want) {
			t.Fatalf("method %v: parallel differs", m)
		}
	}
}

func TestRepairParallelMatchesSerial(t *testing.T) {
	c := exemplary(t, Inside)
	lost := worstCaseLost(c)
	st, want := encodeAndBreak(t, c, lost, 13)
	if err := c.RepairParallel(st, lost, 3); err != nil {
		t.Fatal(err)
	}
	if !stripesEqual(st, want) {
		t.Fatal("parallel repair produced wrong bytes")
	}
	// Beyond-coverage patterns still rejected.
	var tooMany []Cell
	for col := 0; col < 3; col++ {
		for row := 0; row < c.R(); row++ {
			tooMany = append(tooMany, Cell{Col: col, Row: row})
		}
	}
	if err := c.RepairParallel(st, tooMany, 3); err == nil {
		t.Error("parallel repair accepted unrecoverable pattern")
	}
	// Empty pattern is a no-op.
	if err := c.RepairParallel(st, nil, 3); err != nil {
		t.Errorf("empty pattern: %v", err)
	}
}

func TestParallelValidation(t *testing.T) {
	c := exemplary(t, Inside)
	st, _ := c.NewStripe(16)
	if err := c.EncodeParallel(st, MethodAuto, -1); err == nil {
		t.Error("negative workers accepted")
	}
	if err := c.RepairParallel(st, []Cell{{0, 0}}, -1); err == nil {
		t.Error("negative workers accepted in repair")
	}
	if err := c.EncodeParallel(nil, MethodAuto, 1); err == nil {
		t.Error("nil stripe accepted")
	}
}

func TestSplitRanges(t *testing.T) {
	cases := []struct {
		size, align, workers int
		want                 int // expected range count
	}{
		{100, 1, 4, 4},
		{100, 1, 1, 1},
		{100, 1, 0, 1},
		{8, 2, 8, 4}, // only 4 symbols available
		{6, 2, 2, 2},
		{2, 2, 5, 1},
	}
	for _, tc := range cases {
		got := splitRanges(tc.size, tc.align, tc.workers)
		if len(got) != tc.want {
			t.Errorf("splitRanges(%d,%d,%d) gave %d ranges, want %d",
				tc.size, tc.align, tc.workers, len(got), tc.want)
		}
		// Ranges must tile [0, size) contiguously and be aligned.
		off := 0
		for _, rg := range got {
			if rg[0] != off {
				t.Fatalf("range gap at %d: %v", off, got)
			}
			if rg[0]%tc.align != 0 || rg[1]%tc.align != 0 {
				t.Fatalf("unaligned range %v", rg)
			}
			if rg[1] <= rg[0] {
				t.Fatalf("empty range %v", rg)
			}
			off = rg[1]
		}
		if off != tc.size {
			t.Fatalf("ranges do not cover size %d: %v", tc.size, got)
		}
	}
}

// TestEncodeParallelOddSectorW16: w=16 alignment (2-byte symbols) must be
// preserved when splitting.
func TestEncodeParallelOddSectorW16(t *testing.T) {
	c, err := New(Config{N: 6, R: 4, M: 1, E: []int{2}, W: 16})
	if err != nil {
		t.Fatal(err)
	}
	serial, _ := c.NewStripe(10) // 5 symbols: awkward split
	fillData(t, c, serial, 3)
	if err := c.Encode(serial); err != nil {
		t.Fatal(err)
	}
	par, _ := c.NewStripe(10)
	fillData(t, c, par, 3)
	if err := c.EncodeParallel(par, MethodAuto, 4); err != nil {
		t.Fatal(err)
	}
	if !stripesEqual(serial, par) {
		t.Fatal("w=16 parallel encode differs from serial")
	}
}
