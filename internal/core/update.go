package core

import (
	"fmt"

	"stair/internal/gf"
)

// Update overwrites one data cell and incrementally patches every parity
// cell that depends on it, using the uneven parity relations of §5.2:
// for each affected parity p with coefficient a, p ^= a·(old ^ new).
// newData must be SectorSize bytes. Only ClassData cells can be updated.
func (c *Code) Update(st *Stripe, cell Cell, newData []byte) error {
	if err := c.validateStripe(st); err != nil {
		return err
	}
	class, err := c.Class(cell)
	if err != nil {
		return err
	}
	if class != ClassData {
		return fmt.Errorf("core: cell %v is %v, not data", cell, class)
	}
	if len(newData) != st.SectorSize {
		return fmt.Errorf("core: new data has %d bytes, want %d", len(newData), st.SectorSize)
	}
	ord := c.dataOrd[c.cellIdx(cell.Row, cell.Col)]
	old := st.Sector(cell.Col, cell.Row)
	delta := make([]byte, st.SectorSize)
	copy(delta, old)
	gf.XORRegion(delta, newData)
	deps := c.dataDeps[ord]
	dsts := make([][]byte, len(deps))
	coeffs := make([]uint32, len(deps))
	for i, pr := range deps {
		row, col := c.cellRC(int(pr.cell))
		if l, h, ok := c.globalOf(row, col); ok {
			dsts[i] = st.Globals[c.globalOrd(l, h)]
		} else {
			dsts[i] = st.Sector(col, row)
		}
		coeffs[i] = pr.coeff
	}
	if c.planMode == planLegacy {
		for i := range dsts {
			c.f.MultXOR(dsts[i], delta, coeffs[i])
		}
	} else {
		// One fused pass: the delta region is read once for all affected
		// parity sectors (§5.2 uneven parity relations, source-major).
		c.f.MultXORFused(dsts, delta, coeffs)
	}
	copy(old, newData)
	return nil
}

// UpdatePenalty returns the number of parity sectors that must be
// rewritten when the given data cell changes (§6.3).
func (c *Code) UpdatePenalty(cell Cell) (int, error) {
	class, err := c.Class(cell)
	if err != nil {
		return 0, err
	}
	if class != ClassData {
		return 0, fmt.Errorf("core: cell %v is %v, not data", cell, class)
	}
	ord := c.dataOrd[c.cellIdx(cell.Row, cell.Col)]
	return len(c.dataDeps[ord]), nil
}

// MeanUpdatePenalty returns the update penalty averaged over all data
// cells — the quantity plotted in the paper's Figures 14 and 15.
func (c *Code) MeanUpdatePenalty() float64 {
	if len(c.dataDeps) == 0 {
		return 0
	}
	total := 0
	for _, deps := range c.dataDeps {
		total += len(deps)
	}
	return float64(total) / float64(len(c.dataDeps))
}

// ParityDependencies returns the cells of every parity sector affected by
// the given data cell, exposing the §5.2 parity-relation structure
// (Property 5.1). Outside globals are reported with Col == N+l, Row == h.
func (c *Code) ParityDependencies(cell Cell) ([]Cell, error) {
	class, err := c.Class(cell)
	if err != nil {
		return nil, err
	}
	if class != ClassData {
		return nil, fmt.Errorf("core: cell %v is %v, not data", cell, class)
	}
	ord := c.dataOrd[c.cellIdx(cell.Row, cell.Col)]
	out := make([]Cell, 0, len(c.dataDeps[ord]))
	for _, pr := range c.dataDeps[ord] {
		row, col := c.cellRC(int(pr.cell))
		if l, h, ok := c.globalOf(row, col); ok {
			out = append(out, Cell{Col: c.n + l, Row: h})
			continue
		}
		out = append(out, Cell{Col: col, Row: row})
	}
	return out, nil
}
