module stair

go 1.24
