// Package stair implements STAIR codes — a general family of erasure
// codes that tolerate both device and sector failures in practical
// storage systems (Li & Lee, FAST 2014).
//
// A STAIR code protects one stripe of an n-device array, where each
// device contributes a chunk of r sectors. It tolerates m whole-chunk
// failures plus sector failures in up to m' additional chunks, bounded
// per chunk by the coverage vector e = (e0 ≤ e1 ≤ … ≤ e_{m'-1}), at a
// redundancy cost of only m chunks plus s = Σe sectors per stripe —
// where a traditional erasure code would spend m+m' whole chunks.
//
// # Quick start
//
//	code, err := stair.New(stair.Config{
//		N: 8, R: 4, M: 2, E: []int{1, 1, 2},
//	})
//	if err != nil { ... }
//	st, _ := code.NewStripe(4096)       // 4 KiB sectors
//	for _, c := range code.DataCells() {
//		fillSector(st.Sector(c.Col, c.Row))
//	}
//	if err := code.Encode(st); err != nil { ... }
//
//	// Later: devices 6 and 7 die, and sector (3,3) is unreadable.
//	lost := []stair.Cell{ ... }
//	if err := code.Repair(st, lost); err != nil { ... }
//
// The package exposes the paper's three encoding methods (upstairs,
// downstairs, standard), picking the cheapest automatically (§5.3);
// upstairs decoding with the practical local-repair fast path (§4.2-4.3);
// incremental parity updates via the uneven parity relations (§5.2);
// and cost/penalty introspection used to reproduce the paper's
// evaluation (see cmd/stairbench).
//
// All exported types are thin aliases over internal/core, which contains
// the full construction.
package stair

import (
	"stair/internal/core"
)

// Config describes a STAIR code instance; see core.Config for field
// documentation. The zero values of W, Placement and Kind select the
// paper's defaults (auto-sized GF(2^w), inside global parities, Cauchy
// Reed-Solomon building blocks).
type Config = core.Config

// Code is a compiled STAIR code, safe for concurrent use.
type Code = core.Code

// Stripe holds one stripe's sector payloads.
type Stripe = core.Stripe

// Cell addresses a sector by (chunk column, sector row).
type Cell = core.Cell

// CellClass labels what a stripe cell stores.
type CellClass = core.CellClass

// Method selects an encoding method.
type Method = core.Method

// Placement selects where global parity symbols live.
type Placement = core.Placement

// TraceStep is one solve step of an encode/decode schedule, in the
// paper's Tables 2-3 presentation style.
type TraceStep = core.TraceStep

// Re-exported enum values.
const (
	Inside  = core.Inside
	Outside = core.Outside

	MethodAuto       = core.MethodAuto
	MethodUpstairs   = core.MethodUpstairs
	MethodDownstairs = core.MethodDownstairs
	MethodStandard   = core.MethodStandard

	ClassData         = core.ClassData
	ClassRowParity    = core.ClassRowParity
	ClassGlobalParity = core.ClassGlobalParity
)

// ErrUnrecoverable reports a failure pattern outside the code's coverage.
var ErrUnrecoverable = core.ErrUnrecoverable

// New compiles a STAIR code for the given configuration.
func New(cfg Config) (*Code, error) { return core.New(cfg) }

// StorageEfficiency computes the fraction of stripe capacity holding
// user data for arbitrary parameters (paper Eq. 8): (r(n−m)−s)/(r·n).
func StorageEfficiency(n, r, m, s int) float64 { return core.StorageEfficiency(n, r, m, s) }

// SpaceSavingDevices returns how many devices a STAIR code with coverage
// e saves over a traditional erasure code protecting the same failures
// with whole parity chunks: m' − s/r (§6.1, Figure 10).
func SpaceSavingDevices(e []int, r int) float64 { return core.SpaceSavingDevices(e, r) }
